// The observability layer: Perfetto trace export (JSON validity, flow
// events, determinism), latency-histogram percentile math, metrics
// registry accounting (including negative-overlap steps), interned record
// names, and the zero-allocation guarantee when no listener is attached.
#include "trace/flight_recorder.hpp"
#include "trace/metrics.hpp"
#include "trace/session.hpp"
#include "trace/trace_writer.hpp"

#include "nbody/simulation.hpp"
#include "runtime/device.hpp"
#include "util/rng.hpp"

#include "mini_json.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <vector>

// --- global allocation counter (for the zero-overhead-when-off test) ------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gothic::trace {
namespace {

// JsonValue/JsonParser/read_file live in tests/mini_json.hpp (shared with
// the bench golden-schema test).
using minijson::JsonParser;
using minijson::JsonValue;
using minijson::read_file;

// --- latency histogram -----------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
}

TEST(LatencyHistogram, SingleValueDistribution) {
  LatencyHistogram h;
  const double v = 1e-3;
  for (int i = 0; i < 100; ++i) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max_seconds(), v);
  EXPECT_NEAR(h.mean_seconds(), v, 1e-15);
  // Percentiles resolve to the bin's upper edge: within [v, 2v).
  for (const double p : {0.01, 0.5, 0.95, 1.0}) {
    EXPECT_GE(h.percentile(p), v);
    EXPECT_LE(h.percentile(p), 2.0 * v);
  }
}

TEST(LatencyHistogram, BimodalPercentilesSplitTheModes) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.add(1e-6);
  for (int i = 0; i < 10; ++i) h.add(1e-2);
  // Rank 50 falls in the small mode, rank 95 in the large one.
  EXPECT_LE(h.p50_seconds(), 2e-6);
  EXPECT_GE(h.p95_seconds(), 1e-2);
  EXPECT_LE(h.p50_seconds(), h.p95_seconds());
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1e-2);
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram h;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(1e-7, 1e-1));
  double prev = 0.0;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  // p100's bin contains the max sample.
  EXPECT_GE(h.percentile(1.0), h.max_seconds());
  EXPECT_LE(h.percentile(1.0), 2.0 * h.max_seconds());
}

TEST(LatencyHistogram, OutOfRangeSamplesClampIntoEdgeBins) {
  EXPECT_EQ(LatencyHistogram::bin_index(1e-30), 0);
  EXPECT_EQ(LatencyHistogram::bin_index(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bin_index(1e30),
            LatencyHistogram::kBins - 1);
  LatencyHistogram h;
  h.add(1e-30);
  h.add(1e30);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(LatencyHistogram::kBins - 1), 1u);
}

// --- metrics registry ------------------------------------------------------

runtime::LaunchRecord synthetic_record(Kernel k, std::uint64_t id,
                                       double t0, double t1) {
  runtime::LaunchRecord rec;
  rec.kernel = k;
  rec.label = "synthetic";
  rec.stream = "s0";
  rec.id = id;
  rec.t_begin = t0;
  rec.t_end = t1;
  rec.seconds = t1 - t0;
  rec.workers = 2;
  rec.ops.fp32_fma = 10;
  rec.ops.int_ops = 5;
  rec.ops.bytes_load = 100;
  rec.ops.syncwarp = 3;
  return rec;
}

TEST(MetricsRegistry, AggregatesLaunchesPerKernel) {
  MetricsRegistry m;
  m.record_launch(synthetic_record(Kernel::WalkTree, 1, 0.0, 1e-3));
  m.record_launch(synthetic_record(Kernel::WalkTree, 2, 1e-3, 3e-3));
  m.record_launch(synthetic_record(Kernel::CalcNode, 3, 0.0, 1e-4));
  EXPECT_EQ(m.launches(), 3u);
  const KernelStats& walk = m.kernel(Kernel::WalkTree);
  EXPECT_EQ(walk.launches, 2u);
  EXPECT_NEAR(walk.seconds, 3e-3, 1e-12);
  EXPECT_EQ(walk.ops.fp32_fma, 20u);
  EXPECT_EQ(walk.ops.syncwarp, 6u);
  EXPECT_EQ(walk.latency.count(), 2u);
  EXPECT_EQ(m.kernel(Kernel::MakeTree).launches, 0u);
}

TEST(MetricsRegistry, CountsNegativeOverlapSteps) {
  MetricsRegistry m;
  runtime::StepMark ok;
  ok.index = 1;
  ok.kernel_seconds = 2e-3;
  ok.wall_seconds = 1.5e-3; // +0.5 ms hidden by overlap
  runtime::StepMark anomaly;
  anomaly.index = 2;
  anomaly.kernel_seconds = 1e-3;
  anomaly.wall_seconds = 1.2e-3; // wall exceeds work: -0.2 ms
  m.record_step(ok);
  m.record_step(anomaly);
  EXPECT_EQ(m.steps(), 2u);
  EXPECT_EQ(m.negative_overlap_steps(), 1u);
  EXPECT_NEAR(m.min_raw_overlap_seconds(), -2e-4, 1e-9);
  EXPECT_NEAR(m.overlap_seconds_total(), 5e-4, 1e-9);
}

TEST(MetricsRegistry, PrintsPerKernelTable) {
  MetricsRegistry m;
  m.record_launch(synthetic_record(Kernel::WalkTree, 1, 0.0, 1e-3));
  std::ostringstream os;
  m.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("walkTree"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  // Kernels with no launches are skipped.
  EXPECT_EQ(out.find("makeTree"), std::string::npos);
}

// --- record-name interning (satellite: dangling-pointer fix) ---------------

TEST(Interning, RecordNamesSurviveTheirSources) {
  runtime::Device dev(2, /*async=*/0);
  runtime::InstrumentationSink sink;
  {
    std::string stream_name = "ephemeral";
    std::string label = "transient-label";
    runtime::Stream s(stream_name.c_str());
    runtime::LaunchDesc desc;
    desc.kernel = Kernel::WalkTree;
    desc.label = label.c_str();
    desc.stream = &s;
    desc.sink = &sink;
    (void)dev.launch(desc, [](simt::OpCounts&) {});
    // Clobber the original buffers while the Stream is still alive, then
    // let both it and the strings die.
    stream_name.assign("XXXXXXXXX");
    label.assign("YYYYYYYYYYYYYYY");
  }
  EXPECT_STREQ(sink.last().stream, "ephemeral");
  EXPECT_STREQ(sink.last().label, "transient-label");
}

TEST(Interning, DeduplicatesRepeatedNames) {
  runtime::InstrumentationSink sink;
  const char* a = sink.intern("walk");
  const std::string copy = "walk"; // different address, same contents
  EXPECT_EQ(sink.intern(copy.c_str()), a);
  EXPECT_STREQ(sink.intern(nullptr), "");
}

// --- zero overhead when disabled -------------------------------------------

TEST(ZeroOverhead, SteadyStateLaunchesDoNotAllocateWithoutListener) {
  ASSERT_EQ(std::getenv("GOTHIC_TRACE"), nullptr)
      << "test requires GOTHIC_TRACE unset";
  runtime::Device dev(2, /*async=*/0);
  runtime::InstrumentationSink sink;
  ASSERT_EQ(sink.listener(), nullptr);
  runtime::Stream s("steady");
  runtime::LaunchDesc desc;
  desc.kernel = Kernel::WalkTree;
  desc.stream = &s;
  desc.sink = &sink;
  auto run_step = [&] {
    sink.begin_step();
    for (int i = 0; i < 8; ++i) {
      (void)dev.launch(desc, [](simt::OpCounts& ops) { ops.fp32_fma += 1; });
    }
  };
  for (int warm = 0; warm < 4; ++warm) run_step();
  const std::uint64_t before = g_allocations.load();
  for (int iter = 0; iter < 50; ++iter) run_step();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "instrumentation stream allocated in steady state with no "
         "listener attached";
}

TEST(ZeroOverhead, FlightRingWritesAreAllocationFreeAfterWarmup) {
  FlightRecorder flight(/*launch_capacity=*/8, /*step_capacity=*/4);
  runtime::LaunchRecord walk = synthetic_record(Kernel::WalkTree, 1, 0.0, 1e-4);
  runtime::LaunchRecord calc = synthetic_record(Kernel::CalcNode, 2, 0.0, 1e-4);
  calc.label = "calc";
  calc.stream = "s1";
  runtime::StepMark mark;
  mark.index = 1;
  mark.kernel_seconds = 2e-4;
  mark.wall_seconds = 1.5e-4;
  // Warm-up: the rings are pre-sized, so the only allocations are the
  // first interning of each label/stream name.
  for (int warm = 0; warm < 4; ++warm) {
    flight.on_record(walk);
    flight.on_record(calc);
    flight.on_step(mark);
  }
  const std::uint64_t before = g_allocations.load();
  for (std::uint64_t iter = 0; iter < 200; ++iter) {
    walk.id = 10 + 3 * iter;
    calc.id = walk.id + 1;
    mark.index = iter;
    flight.on_record(walk);
    flight.record_only(calc); // the error-path backfill shares the ring
    flight.on_step(mark);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "flight-recorder ring writes allocated after warm-up";
  EXPECT_EQ(flight.seen_records(), 8u + 400u);
  EXPECT_EQ(flight.seen_steps(), 4u + 200u);
}

// --- trace writer ----------------------------------------------------------

TEST(TraceWriter, BoundedBufferCountsDrops) {
  TraceWriter w(/*max_records=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    w.on_record(synthetic_record(Kernel::WalkTree, i, 0.0, 1e-4));
  }
  EXPECT_EQ(w.record_count(), 4u);
  EXPECT_EQ(w.dropped_records(), 6u);
  std::ostringstream os;
  w.write(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  EXPECT_EQ(doc.at("otherData").at("dropped_records").number, 6.0);
  EXPECT_EQ(doc.at("otherData").at("records").number, 4.0);
}

TEST(TraceWriter, SerializesSyntheticDagWithFlows) {
  TraceWriter w;
  auto a = synthetic_record(Kernel::MakeTree, 1, 0.0, 1e-3);
  a.stream = "tree";
  auto b = synthetic_record(Kernel::PredictCorrect, 2, 0.0, 5e-4);
  b.stream = "integrate";
  auto c = synthetic_record(Kernel::WalkTree, 3, 1e-3, 2e-3);
  c.stream = "tree";
  c.deps = {1, 2, 0, 0}; // dep 1 is same-stream (no flow), dep 2 crosses
  w.on_record(a);
  w.on_record(b);
  w.on_record(c);
  runtime::StepMark mark;
  mark.index = 1;
  mark.rebuilt = true;
  mark.t_end = 2e-3;
  mark.kernel_seconds = 2.5e-3;
  mark.wall_seconds = 2e-3;
  w.on_step(mark);

  std::ostringstream os;
  w.write(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  const auto& events = doc.at("traceEvents").array;

  int x = 0, s = 0, f = 0, instant = 0, counter = 0;
  std::set<std::string> flow_ids;
  std::set<double> x_tids;
  for (const JsonValue& e : events) {
    const std::string ph = e.at("ph").str;
    if (ph == "X") {
      ++x;
      x_tids.insert(e.at("tid").number);
    } else if (ph == "s") {
      ++s;
      flow_ids.insert(e.at("id").str);
    } else if (ph == "f") {
      ++f;
      EXPECT_EQ(e.at("bp").str, "e");
      EXPECT_TRUE(flow_ids.count(e.at("id").str) > 0);
    } else if (ph == "i") {
      ++instant;
    } else if (ph == "C") {
      ++counter;
    }
  }
  EXPECT_EQ(x, 3);
  EXPECT_EQ(x_tids.size(), 2u); // one track per stream lane
  EXPECT_EQ(s, 1);              // only the cross-stream edge draws an arrow
  EXPECT_EQ(f, 1);
  EXPECT_EQ(flow_ids.count("2->3"), 1u);
  EXPECT_EQ(instant, 2); // "step 1" + "rebuild"
  // 3 cumulative ops samples + 6 workers_busy edges + 1 per-step
  // walk_imbalance sample.
  EXPECT_EQ(counter, 10);
}

// --- session + simulation round trip ---------------------------------------

nbody::Particles plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  nbody::Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    const double v = 0.5 / std::pow(1.0 + r * r, 0.25);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

nbody::SimConfig traced_config() {
  nbody::SimConfig cfg;
  cfg.walk.eps = real(0.05);
  cfg.walk.mac.dacc = real(1.0 / 256);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 64;
  cfg.max_level = 3;
  cfg.set_mode(simt::ExecMode::Volta); // syncwarp counters are non-zero
  // The auto-tuner picks rebuild points from live timings — nondeterministic
  // across runs. A fixed interval makes the launch DAG reproducible.
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 2;
  return cfg;
}

/// Run `steps` traced steps and return (event counts per phase, session).
struct TracedRun {
  std::size_t records = 0;
  std::size_t steps = 0;
  std::size_t events = 0;
  std::uint64_t syncwarp = 0;
  JsonValue doc;
};

TracedRun traced_run(const std::string& path, int steps) {
  Session session(path);
  nbody::Simulation sim(plummer(1024, 11), traced_config());
  sim.set_instrumentation_listener(&session);
  for (int i = 0; i < steps; ++i) (void)sim.step();
  sim.set_instrumentation_listener(nullptr);
  EXPECT_TRUE(session.finish(runtime::Device::current()));
  TracedRun out;
  out.records = session.writer()->record_count();
  out.steps = session.writer()->step_count();
  out.syncwarp =
      session.metrics().kernel(Kernel::WalkTree).ops.syncwarp;
  out.doc = JsonParser(read_file(path)).parse();
  out.events = out.doc.at("traceEvents").array.size();
  return out;
}

TEST(Session, TraceRoundTripsThroughRealSimulation) {
  const std::string path = "test_trace_roundtrip.json";
  const int steps = 4;
  const TracedRun run = traced_run(path, steps);

  EXPECT_GT(run.records, 0u);
  EXPECT_EQ(run.steps, static_cast<std::size_t>(steps));
  EXPECT_GT(run.syncwarp, 0u); // Volta mode: syncwarp counter is live

  // The document is one self-contained object Perfetto can load.
  const JsonValue& doc = run.doc;
  EXPECT_TRUE(doc.has("traceEvents"));
  EXPECT_TRUE(doc.has("otherData"));
  EXPECT_EQ(doc.at("otherData").at("records").number,
            static_cast<double>(run.records));
  EXPECT_EQ(doc.at("otherData").at("dropped_records").number, 0.0);

  // Per-lane spans: the tree and integrate streams are distinct tracks.
  std::set<double> x_tids;
  std::set<std::string> track_names;
  std::size_t x_events = 0, step_marks = 0, syncwarp_counters = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string ph = e.at("ph").str;
    if (ph == "M" && e.at("name").str == "thread_name") {
      track_names.insert(e.at("args").at("name").str);
    } else if (ph == "X") {
      ++x_events;
      x_tids.insert(e.at("tid").number);
      EXPECT_TRUE(e.at("args").has("syncwarp"));
      EXPECT_TRUE(e.at("args").has("fp32"));
    } else if (ph == "i" &&
               e.at("name").str.rfind("step ", 0) == 0) {
      ++step_marks;
    } else if (ph == "C" && e.at("name").str == "ops") {
      if (e.at("args").at("syncwarp").number > 0) ++syncwarp_counters;
    }
  }
  EXPECT_EQ(x_events, run.records);
  EXPECT_GE(x_tids.size(), 2u);
  EXPECT_EQ(step_marks, static_cast<std::size_t>(steps));
  EXPECT_GT(syncwarp_counters, 0u);
  EXPECT_TRUE(track_names.count("stream tree") == 1);
  EXPECT_TRUE(track_names.count("stream integrate") == 1);
  std::remove(path.c_str());
}

TEST(Session, FlowEventEndpointsMatchRecordDeps) {
  const std::string path = "test_trace_flows.json";
  Session session(path);
  nbody::Simulation sim(plummer(1024, 11), traced_config());
  sim.set_instrumentation_listener(&session);
  for (int i = 0; i < 4; ++i) (void)sim.step();
  sim.set_instrumentation_listener(nullptr);
  ASSERT_TRUE(session.finish(runtime::Device::current()));

  // Expected arrows: every resolvable cross-stream dep edge in the
  // buffered records, keyed "src->dst".
  const auto& records = session.writer()->records();
  std::map<std::uint64_t, const runtime::LaunchRecord*> by_id;
  for (const auto& rec : records) by_id[rec.id] = &rec;
  std::set<std::string> expected;
  for (const auto& rec : records) {
    for (std::uint64_t dep : rec.deps) {
      if (dep == 0) continue;
      auto it = by_id.find(dep);
      if (it == by_id.end()) continue;
      if (std::string(it->second->stream) == rec.stream) continue;
      expected.insert(std::to_string(dep) + "->" + std::to_string(rec.id));
    }
  }
  ASSERT_GT(expected.size(), 0u); // the step DAG has cross-stream joins

  const JsonValue doc = JsonParser(read_file(path)).parse();
  std::set<std::string> starts, finishes;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string ph = e.at("ph").str;
    if (ph == "s") starts.insert(e.at("id").str);
    if (ph == "f") finishes.insert(e.at("id").str);
  }
  EXPECT_EQ(starts, expected);
  EXPECT_EQ(finishes, expected);
  std::remove(path.c_str());
}

TEST(Session, EventCountIsDeterministicForFixedSeed) {
  const TracedRun a = traced_run("test_trace_det_a.json", 3);
  const TracedRun b = traced_run("test_trace_det_b.json", 3);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.events, b.events);
  std::remove("test_trace_det_a.json");
  std::remove("test_trace_det_b.json");
}

TEST(Session, MetricsOnlyWhenPathEmpty) {
  Session session("");
  EXPECT_FALSE(session.tracing());
  EXPECT_EQ(session.writer(), nullptr);
  session.on_record(synthetic_record(Kernel::WalkTree, 1, 0.0, 1e-3));
  EXPECT_EQ(session.metrics().launches(), 1u);
  EXPECT_TRUE(session.finish(runtime::Device::current()));
  EXPECT_GT(session.metrics().workers(), 0);
}

TEST(Session, EnvTracePathFollowsGothicTrace) {
  ASSERT_EQ(setenv("GOTHIC_TRACE", "somewhere/trace.json", 1), 0);
  EXPECT_EQ(Session::env_trace_path(), "somewhere/trace.json");
  Session on;
  EXPECT_TRUE(on.tracing());
  EXPECT_EQ(on.trace_path(), "somewhere/trace.json");
  ASSERT_EQ(unsetenv("GOTHIC_TRACE"), 0);
  EXPECT_EQ(Session::env_trace_path(), "");
  Session off;
  EXPECT_FALSE(off.tracing());
}

} // namespace
} // namespace gothic::trace
