// End-to-end Simulation runs: conservation, block-step activity, rebuild
// auto-tuning and per-kernel accounting.
#include "nbody/simulation.hpp"
#include "testkit/fuzz.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gothic::nbody {
namespace {

Particles plummer(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Particles p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(1e-6, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    p.x[i] = static_cast<real>(r * ux);
    p.y[i] = static_cast<real>(r * uy);
    p.z[i] = static_cast<real>(r * uz);
    // Isotropic velocities at ~half the local circular speed: bound, and
    // the system virialises within a few dynamical times.
    const double v = 0.5 / std::pow(1.0 + r * r, 0.25);
    rng.unit_vector(ux, uy, uz);
    p.vx[i] = static_cast<real>(v * ux);
    p.vy[i] = static_cast<real>(v * uy);
    p.vz[i] = static_cast<real>(v * uz);
    p.m[i] = real(1.0 / static_cast<double>(n));
  }
  return p;
}

SimConfig tight_config() {
  SimConfig cfg;
  cfg.walk.eps = real(0.05);
  cfg.walk.mac.dacc = real(1.0 / 1024);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 64;
  cfg.max_level = 4;
  return cfg;
}

TEST(Simulation, EnergyConservedOverManySteps) {
  Simulation sim(plummer(2048, 1), tight_config());
  sim.refresh_forces();
  const Energies e0 = sim.energies();
  ASSERT_LT(e0.total(), 0.0); // bound system
  sim.run(64);
  sim.refresh_forces();
  const Energies e1 = sim.energies();
  EXPECT_NEAR(e1.total(), e0.total(), std::fabs(e0.total()) * 0.02);
}

TEST(Simulation, MomentumDriftStaysSmall) {
  Simulation sim(plummer(2048, 2), tight_config());
  sim.run(32);
  const Momenta mm = sim.momenta();
  // Characteristic momentum scale: M_total * sigma ~ 1 * 0.4.
  const double pmag = std::sqrt(mm.px * mm.px + mm.py * mm.py + mm.pz * mm.pz);
  EXPECT_LT(pmag, 5e-3);
}

TEST(Simulation, BlockStepsFireFewerParticlesThanShared) {
  // dt_max large enough that the acceleration criterion spreads the
  // particles over several levels (a Plummer sphere spans ~2 decades
  // in |a|).
  SimConfig blocks = tight_config();
  blocks.dt_max = 0.25;
  blocks.max_level = 6;
  SimConfig shared = blocks;
  shared.block_time_steps = false;
  shared.dt_max = 1.0 / 64;

  Simulation sb(plummer(2048, 3), blocks);
  Simulation ss(plummer(2048, 3), shared);
  std::size_t active_blocks = 0, active_shared = 0;
  int steps_b = 0, steps_s = 0;
  while (sb.time() < 0.25) {
    active_blocks += sb.step().n_active;
    ++steps_b;
  }
  while (ss.time() < 0.25) {
    active_shared += ss.step().n_active;
    ++steps_s;
  }
  // Shared stepping fires everyone every step.
  EXPECT_EQ(active_shared, static_cast<std::size_t>(steps_s) * 2048u);
  // Block stepping does strictly less correction work per unit time.
  EXPECT_LT(static_cast<double>(active_blocks) / steps_b, 2048.0);
}

TEST(Simulation, AutoRebuildConvergesToFiniteInterval) {
  SimConfig cfg = tight_config();
  cfg.auto_rebuild = true;
  // Cap the interval: with only ~us-scale kernel times on a small test
  // problem the fitted slope is wall-clock noise, and an uncapped policy
  // may legitimately stretch to its 64-step maximum.
  cfg.policy.max_interval = 12;
  Simulation sim(plummer(4096, 4), cfg);
  sim.run(48);
  EXPECT_GE(sim.rebuild_count(), 2);
  const int k = sim.rebuild_policy().target_interval();
  EXPECT_GE(k, cfg.policy.min_interval);
  EXPECT_LE(k, cfg.policy.max_interval);
}

TEST(Simulation, FixedRebuildIntervalHonored) {
  SimConfig cfg = tight_config();
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 5;
  Simulation sim(plummer(1024, 5), cfg);
  int rebuilt_steps = 0;
  for (int s = 0; s < 20; ++s) {
    if (sim.step().rebuilt) ++rebuilt_steps;
  }
  // The interval counts steps between rebuilds: the check fires once 5
  // steps have elapsed, i.e. during steps 6, 11 and 16.
  EXPECT_EQ(rebuilt_steps, 3);
}

TEST(Simulation, StepReportAccountsAllKernels) {
  Simulation sim(plummer(1024, 6), tight_config());
  const StepReport r = sim.step();
  EXPECT_GT(r.ops[static_cast<std::size_t>(Kernel::WalkTree)].fp32_fma, 0u);
  EXPECT_GT(r.ops[static_cast<std::size_t>(Kernel::CalcNode)].fp32_fma, 0u);
  EXPECT_GT(r.ops[static_cast<std::size_t>(Kernel::PredictCorrect)].fp32_fma,
            0u);
  EXPECT_GT(r.walk_stats.interactions, 0u);
  EXPECT_GT(r.dt, 0.0);
  EXPECT_GT(r.n_active, 0u);
}

TEST(Simulation, VoltaModeAccumulatesSyncsAcrossKernels) {
  SimConfig cfg = tight_config();
  cfg.set_mode(simt::ExecMode::Volta);
  Simulation sim(plummer(1024, 7), cfg);
  sim.run(4);
  EXPECT_GT(sim.kernel_ops(Kernel::WalkTree).syncwarp, 0u);
  EXPECT_GT(sim.kernel_ops(Kernel::CalcNode).syncwarp, 0u);
  EXPECT_EQ(sim.kernel_ops(Kernel::PredictCorrect).syncwarp, 0u);
  // makeTree synchronises via Cooperative-Groups tiles, not syncwarp.
  EXPECT_GT(sim.kernel_ops(Kernel::MakeTree).tile_sync, 0u);
}

TEST(Simulation, PascalAndVoltaModesAgreeNumerically) {
  // Fix the rebuild cadence: the auto-tuner feeds on wall-clock times, so
  // two runs would otherwise rebuild on different steps and the float
  // summation order would differ.
  SimConfig pas = tight_config();
  pas.auto_rebuild = false;
  pas.fixed_rebuild_interval = 4;
  pas.set_mode(simt::ExecMode::Pascal);
  SimConfig vol = pas;
  vol.set_mode(simt::ExecMode::Volta);
  Simulation sp(plummer(512, 8), pas);
  Simulation sv(plummer(512, 8), vol);
  sp.run(8);
  sv.run(8);
  const auto& a = sp.particles();
  const auto& b = sv.particles();
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_FLOAT_EQ(a.x[i], b.x[i]);
    EXPECT_FLOAT_EQ(a.vx[i], b.vx[i]);
  }
}

TEST(Simulation, WalkTreeDominatesInstructionMix) {
  // Fig 3/4: the gravity calculation dominates; orbit integration and
  // tree work are subdominant in FP32 terms at fiducial accuracy.
  Simulation sim(plummer(4096, 9), tight_config());
  sim.run(8);
  const auto walk = sim.kernel_ops(Kernel::WalkTree).fp32_core_instructions();
  const auto calc = sim.kernel_ops(Kernel::CalcNode).fp32_core_instructions();
  const auto pred =
      sim.kernel_ops(Kernel::PredictCorrect).fp32_core_instructions();
  EXPECT_GT(walk, calc);
  EXPECT_GT(walk, pred);
}

TEST(Simulation, RefreshForcesGivesFreshPotentials) {
  Simulation sim(plummer(512, 10), tight_config());
  sim.run(4);
  sim.refresh_forces();
  const Energies e = sim.energies();
  EXPECT_LT(e.potential, 0.0);
  EXPECT_GT(e.kinetic, 0.0);
  // A near-equilibrium sphere keeps the virial ratio within a factor ~2.
  EXPECT_GT(e.virial_ratio(), 0.1);
  EXPECT_LT(e.virial_ratio(), 2.0);
}

TEST(Simulation, ThrowsOnEmptyParticleSet) {
  EXPECT_THROW(Simulation(Particles{}, SimConfig{}), std::invalid_argument);
}

TEST(Simulation, RandomizedLaunchSchedulesAreBitIdenticalToSyncReference) {
  // Schedule stress: force a batch of randomly chosen interleavings of the
  // step loop's stream DAG through the testkit's serializing controller
  // and require bit-identical particle state against the synchronous
  // reference run — every seed is a full repro token if this ever fails.
  testkit::FuzzConfig cfg;
  cfg.n = 128;
  cfg.steps = 8;
  const testkit::SweepReport rep = testkit::sweep_seeds(cfg, 0x907'81c, 16);
  EXPECT_EQ(rep.runs, 16u);
  EXPECT_GT(rep.signatures.size(), 1u);
  EXPECT_TRUE(rep.failing_seeds.empty());
  EXPECT_TRUE(rep.ok()) << rep.failures.front();
}

} // namespace
} // namespace gothic::nbody
