// Morton keys, radix sort, tree construction and calcNode.
#include "octree/calc_node.hpp"
#include "octree/morton.hpp"
#include "octree/radix_sort.hpp"
#include "octree/tree_build.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace gothic::octree {
namespace {

TEST(Morton, EncodeDecodeRoundTrips) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto ix = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iy = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    const auto iz = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    std::uint32_t ox, oy, oz;
    morton_decode(morton_encode(ix, iy, iz), ox, oy, oz);
    EXPECT_EQ(ox, ix);
    EXPECT_EQ(oy, iy);
    EXPECT_EQ(oz, iz);
  }
}

TEST(Morton, ExpandBitsSpacing) {
  // Bit k of the input lands at bit 3k of the output.
  for (int k = 0; k < 21; ++k) {
    EXPECT_EQ(expand_bits_3(1u << k), std::uint64_t{1} << (3 * k));
  }
}

TEST(Morton, DigitExtractionMatchesTopDownOctants) {
  // A point in the upper octant on all axes has digit 7 at depth 0.
  const std::uint64_t key = morton_encode(0x1fffff, 0x1fffff, 0x1fffff);
  EXPECT_EQ(morton_digit(key, 0), 7u);
  const std::uint64_t zero = morton_encode(0, 0, 0);
  for (int d = 0; d < kMaxDepth; ++d) EXPECT_EQ(morton_digit(zero, d), 0u);
}

TEST(Morton, KeysOrderedAlongSpaceFillingCurve) {
  // x-major ordering is not guaranteed, but the key of the cell containing
  // the origin is minimal and the far corner maximal.
  BoundingCube box{0, 0, 0, 1};
  const auto lo = morton_key(box, 0.0f, 0.0f, 0.0f);
  const auto hi = morton_key(box, 0.999f, 0.999f, 0.999f);
  EXPECT_LT(lo, hi);
  EXPECT_EQ(lo, 0u);
}

TEST(Morton, BoundingCubeCoversAllPoints) {
  Xoshiro256 rng(7);
  std::vector<real> x(500), y(500), z(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<real>(rng.uniform(-3, 9));
    y[i] = static_cast<real>(rng.uniform(5, 6));
    z[i] = static_cast<real>(rng.uniform(-100, 100));
  }
  const BoundingCube box = compute_bounding_cube(x, y, z);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], box.min_x);
    EXPECT_LT(x[i], box.min_x + box.edge);
    EXPECT_GE(y[i], box.min_y);
    EXPECT_LT(y[i], box.min_y + box.edge);
    EXPECT_GE(z[i], box.min_z);
    EXPECT_LT(z[i], box.min_z + box.edge);
  }
}

class RadixSortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortSizes, SortsKeysAndCarriesPayload) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  std::vector<std::uint64_t> expect = keys;
  std::sort(expect.begin(), expect.end());
  std::vector<index_t> payload(n);
  std::iota(payload.begin(), payload.end(), index_t{0});

  std::vector<std::uint64_t> orig = keys;
  radix_sort_pairs(keys, payload);
  ASSERT_TRUE(is_sorted_keys(keys));
  EXPECT_EQ(keys, expect);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(orig[payload[i]], keys[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortSizes,
                         ::testing::Values(2, 3, 31, 32, 1000, 65536));

TEST(RadixSort, StableWithinEqualKeys) {
  // Equal keys must preserve payload order (required for deterministic
  // trees when particles share a Morton cell).
  const std::size_t n = 1000;
  std::vector<std::uint64_t> keys(n);
  std::vector<index_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = i % 7;
    payload[i] = static_cast<index_t>(i);
  }
  radix_sort_pairs(keys, payload);
  for (std::size_t i = 1; i < n; ++i) {
    if (keys[i] == keys[i - 1]) {
      EXPECT_GT(payload[i], payload[i - 1]);
    }
  }
}

TEST(RadixSort, LimitedBitsSortLowDigitsOnly) {
  std::vector<std::uint64_t> keys = {0x200000005ull, 0x100000001ull};
  std::vector<index_t> payload = {0, 1};
  // Only 8 low bits participate: order by 5 vs 1.
  radix_sort_pairs(keys, payload, 8);
  EXPECT_EQ(keys[0], 0x100000001ull);
  EXPECT_EQ(payload[0], 1u);
}

TEST(RadixSort, AccountsMemoryTraffic) {
  std::vector<std::uint64_t> keys(256);
  std::vector<index_t> payload(256);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = 255 - i;
    payload[i] = static_cast<index_t>(i);
  }
  simt::OpCounts ops;
  radix_sort_pairs(keys, payload, 64, &ops);
  // 8 passes x 256 pairs x 12 bytes in each direction.
  EXPECT_EQ(ops.bytes_load, 8u * 256u * 12u);
  EXPECT_EQ(ops.bytes_store, 8u * 256u * 12u);
}

// --- tree construction -------------------------------------------------------

struct Cloud {
  std::vector<real> x, y, z, m;
};

Cloud random_cloud(std::size_t n, std::uint64_t seed, bool clustered = false) {
  Xoshiro256 rng(seed);
  Cloud c;
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  c.m.assign(n, real(1.0 / static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    if (clustered && i % 2 == 0) {
      c.x[i] = static_cast<real>(rng.normal(0.5, 0.02));
      c.y[i] = static_cast<real>(rng.normal(0.5, 0.02));
      c.z[i] = static_cast<real>(rng.normal(0.5, 0.02));
    } else {
      c.x[i] = static_cast<real>(rng.uniform());
      c.y[i] = static_cast<real>(rng.uniform());
      c.z[i] = static_cast<real>(rng.uniform());
    }
  }
  return c;
}

void sort_cloud(Cloud& c, Octree& tree, std::vector<index_t>& perm,
                const BuildConfig& cfg = {}) {
  build_tree(c.x, c.y, c.z, tree, perm, cfg);
  Cloud s = c;
  gather(c.x, perm, s.x);
  gather(c.y, perm, s.y);
  gather(c.z, perm, s.z);
  gather(c.m, perm, s.m);
  c = s;
}

TEST(TreeBuild, RootCoversAllBodies) {
  Cloud c = random_cloud(1000, 1);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  EXPECT_EQ(tree.body_first[0], 0u);
  EXPECT_EQ(tree.body_count[0], 1000u);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(TreeBuild, PermutationIsABijection) {
  Cloud c = random_cloud(4096, 2);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  std::vector<index_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<index_t>(i));
  }
}

TEST(TreeBuild, ChildrenPartitionParentRange) {
  Cloud c = random_cloud(8192, 3, /*clustered=*/true);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node)) continue;
    index_t covered = 0;
    index_t cursor = tree.body_first[node];
    for (int k = 0; k < tree.child_count[node]; ++k) {
      const index_t child = tree.child_first[node] + static_cast<index_t>(k);
      EXPECT_EQ(tree.body_first[child], cursor)
          << "child ranges must be contiguous";
      cursor += tree.body_count[child];
      covered += tree.body_count[child];
    }
    EXPECT_EQ(covered, tree.body_count[node]);
  }
}

TEST(TreeBuild, LeavesRespectCapacity) {
  const int cap = 24;
  Cloud c = random_cloud(10000, 4);
  Octree tree;
  std::vector<index_t> perm;
  BuildConfig cfg;
  cfg.leaf_capacity = cap;
  sort_cloud(c, tree, perm, cfg);
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node)) {
      EXPECT_LE(tree.body_count[node], static_cast<index_t>(cap));
    }
  }
}

TEST(TreeBuild, LevelsAreContiguousAndDeepening) {
  Cloud c = random_cloud(5000, 5);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  ASSERT_GE(tree.num_levels(), 2);
  for (int lv = 0; lv < tree.num_levels(); ++lv) {
    for (index_t node = tree.level_offset[lv]; node < tree.level_offset[lv + 1];
         ++node) {
      EXPECT_EQ(tree.depth[node], lv);
    }
  }
}

TEST(TreeBuild, IdenticalPositionsTerminate) {
  // All bodies at one point: the build must stop at kMaxDepth with one
  // over-full leaf rather than recursing forever.
  Cloud c;
  c.x.assign(100, real(0.25));
  c.y.assign(100, real(0.5));
  c.z.assign(100, real(0.75));
  c.m.assign(100, real(0.01));
  Octree tree;
  std::vector<index_t> perm;
  BuildConfig cfg;
  cfg.leaf_capacity = 8;
  build_tree(c.x, c.y, c.z, tree, perm, cfg);
  index_t max_leaf = 0;
  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.is_leaf(node)) max_leaf = std::max(max_leaf, tree.body_count[node]);
  }
  EXPECT_EQ(max_leaf, 100u);
}

TEST(TreeBuild, MortonOrderGroupsNearbyBodies) {
  Cloud c = random_cloud(4096, 6, /*clustered=*/true);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  // Consecutive bodies in tree order should be much closer on average than
  // random pairs (the property walkTree's 32-body groups rely on).
  double near = 0, far = 0;
  Xoshiro256 rng(9);
  const std::size_t n = c.x.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dx = c.x[i + 1] - c.x[i];
    const double dy = c.y[i + 1] - c.y[i];
    const double dz = c.z[i + 1] - c.z[i];
    near += std::sqrt(dx * dx + dy * dy + dz * dz);
    const auto j = static_cast<std::size_t>(rng.uniform(0, static_cast<double>(n)));
    const auto k = static_cast<std::size_t>(rng.uniform(0, static_cast<double>(n)));
    const double rx = c.x[j] - c.x[k];
    const double ry = c.y[j] - c.y[k];
    const double rz = c.z[j] - c.z[k];
    far += std::sqrt(rx * rx + ry * ry + rz * rz);
  }
  EXPECT_LT(near, 0.25 * far);
}

// --- calcNode ----------------------------------------------------------------

class CalcNodeTsub : public ::testing::TestWithParam<int> {};

TEST_P(CalcNodeTsub, MassAndComMatchDirectSummation) {
  Cloud c = random_cloud(3000, 10, /*clustered=*/true);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  CalcNodeConfig cfg;
  cfg.tsub = GetParam();
  calc_node(tree, c.x, c.y, c.z, c.m, cfg);

  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    double mm = 0, mx = 0, my = 0, mz = 0;
    for (index_t b = tree.body_first[node];
         b < tree.body_first[node] + tree.body_count[node]; ++b) {
      mm += c.m[b];
      mx += c.m[b] * c.x[b];
      my += c.m[b] * c.y[b];
      mz += c.m[b] * c.z[b];
    }
    ASSERT_GT(mm, 0.0);
    EXPECT_NEAR(tree.mass[node], mm, 1e-5 * mm);
    EXPECT_NEAR(tree.com_x[node], mx / mm, 2e-4);
    EXPECT_NEAR(tree.com_y[node], my / mm, 2e-4);
    EXPECT_NEAR(tree.com_z[node], mz / mm, 2e-4);
  }
}

TEST_P(CalcNodeTsub, BmaxBoundsEveryBodyDistance) {
  Cloud c = random_cloud(2000, 11);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  CalcNodeConfig cfg;
  cfg.tsub = GetParam();
  calc_node(tree, c.x, c.y, c.z, c.m, cfg);

  for (index_t node = 0; node < tree.num_nodes(); ++node) {
    for (index_t b = tree.body_first[node];
         b < tree.body_first[node] + tree.body_count[node]; ++b) {
      const double dx = c.x[b] - tree.com_x[node];
      const double dy = c.y[b] - tree.com_y[node];
      const double dz = c.z[b] - tree.com_z[node];
      const double d = std::sqrt(dx * dx + dy * dy + dz * dz);
      EXPECT_LE(d, tree.bmax[node] * (1.0 + 1e-4) + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CalcNodeTsub, ::testing::Values(4, 8, 16, 32));

TEST(CalcNode, RootMassEqualsTotal) {
  Cloud c = random_cloud(5000, 12);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);
  calc_node(tree, c.x, c.y, c.z, c.m);
  double total = 0;
  for (real mi : c.m) total += mi;
  EXPECT_NEAR(tree.mass[0], total, 1e-5 * total);
}

TEST(CalcNode, VoltaModeCountsSyncsPascalDoesNot) {
  Cloud c = random_cloud(2000, 13);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);

  simt::OpCounts pascal, volta;
  CalcNodeConfig cfg;
  cfg.mode = simt::ExecMode::Pascal;
  calc_node(tree, c.x, c.y, c.z, c.m, cfg, &pascal);
  cfg.mode = simt::ExecMode::Volta;
  calc_node(tree, c.x, c.y, c.z, c.m, cfg, &volta);

  EXPECT_EQ(pascal.syncwarp, 0u);
  EXPECT_GT(volta.syncwarp, 0u);
  // Identical arithmetic in both modes (§4.1: only the sync count differs).
  EXPECT_EQ(pascal.fp32_fma, volta.fp32_fma);
  EXPECT_EQ(pascal.fp32_add, volta.fp32_add);
  EXPECT_EQ(pascal.bytes_load, volta.bytes_load);
}

TEST(CalcNode, SmallerTsubUsesFewerReductionStages) {
  Cloud c = random_cloud(2000, 14);
  Octree tree;
  std::vector<index_t> perm;
  sort_cloud(c, tree, perm);

  simt::OpCounts t8, t32;
  CalcNodeConfig cfg;
  cfg.mode = simt::ExecMode::Volta;
  cfg.tsub = 8;
  calc_node(tree, c.x, c.y, c.z, c.m, cfg, &t8);
  cfg.tsub = 32;
  calc_node(tree, c.x, c.y, c.z, c.m, cfg, &t32);
  // Tsub=8 packs 4 nodes per warp: fewer warp-invocations of log2(width)
  // stages, hence fewer total shuffles and syncs.
  EXPECT_LT(t8.shfl, t32.shfl);
  EXPECT_LT(t8.syncwarp, t32.syncwarp);
}

} // namespace
} // namespace gothic::octree
