// Property-based tests for the warp collectives: random lane values and
// active masks across every tile width (2..32), checking the algebraic
// contracts (segment prefix sums, segment reductions, dense compaction
// slots), bit-identical Pascal/Volta results on identical inputs, the
// Volta syncwarp counts against the log2(width) stage formula, and the
// mask-coverage pitfall (§2.1) under both modes.
#include "simt/scan.hpp"
#include "simt/simd.hpp"
#include "simt/warp.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace gothic::simt {
namespace {

constexpr std::array<int, 5> kWidths{2, 4, 8, 16, 32};

std::uint64_t stages(int width) {
  return static_cast<std::uint64_t>(
      std::countr_zero(static_cast<unsigned>(width)));
}

LaneArray<int> random_ints(Xoshiro256& rng) {
  LaneArray<int> v{};
  for (auto& x : v) x = static_cast<int>(rng.next() % 201) - 100;
  return v;
}

LaneArray<float> random_floats(Xoshiro256& rng) {
  LaneArray<float> v{};
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

lane_mask random_mask(Xoshiro256& rng) {
  const auto m = static_cast<lane_mask>(rng.next());
  return m == 0 ? lane_mask{1} : m;
}

TEST(WarpProperties, InclusiveScanMatchesSequentialPrefixForEveryWidth) {
  Xoshiro256 rng(101);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      const LaneArray<int> orig = v;
      inclusive_scan_add(w, v, width);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        int expect = 0;
        for (int j = (lane / width) * width; j <= lane; ++j) {
          expect += orig[j];
        }
        ASSERT_EQ(v[lane], expect) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, ExclusiveScanYieldsOffsetsAndSegmentTotals) {
  Xoshiro256 rng(102);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      const LaneArray<int> orig = v;
      LaneArray<int> total{};
      exclusive_scan_add(w, v, width, kFullMask, &total);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int base = (lane / width) * width;
        int expect = 0;
        for (int j = base; j < lane; ++j) expect += orig[j];
        int seg = 0;
        for (int j = base; j < base + width; ++j) seg += orig[j];
        ASSERT_EQ(v[lane], expect) << "width " << width << " lane " << lane;
        ASSERT_EQ(total[lane], seg) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, ReductionsMatchSegmentAggregatesForEveryWidth) {
  Xoshiro256 rng(103);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      const LaneArray<int> orig = random_ints(rng);
      LaneArray<int> sum = orig;
      LaneArray<int> lo = orig;
      LaneArray<int> hi = orig;
      reduce_add(w, sum, width);
      reduce_min(w, lo, width);
      reduce_max(w, hi, width);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int base = (lane / width) * width;
        int s = 0;
        int mn = orig[base];
        int mx = orig[base];
        for (int j = base; j < base + width; ++j) {
          s += orig[j];
          mn = std::min(mn, orig[j]);
          mx = std::max(mx, orig[j]);
        }
        ASSERT_EQ(sum[lane], s) << "width " << width << " lane " << lane;
        ASSERT_EQ(lo[lane], mn) << "width " << width << " lane " << lane;
        ASSERT_EQ(hi[lane], mx) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, PascalAndVoltaAreBitIdenticalOnRandomMasks) {
  // The modes differ in synchronisation, never in data: identical inputs
  // (values, active mask, width) must produce identical registers on every
  // lane, including float operations (same order of operations).
  Xoshiro256 rng(202);
  for (int width : kWidths) {
    for (int trial = 0; trial < 16; ++trial) {
      const lane_mask active = random_mask(rng);
      const LaneArray<float> base = random_floats(rng);
      auto run = [&](ExecMode mode) {
        OpCounts c;
        Warp w(mode, c);
        w.diverge(active);
        LaneArray<float> v = base;
        switch (trial % 4) {
          case 0: inclusive_scan_add(w, v, width); break;
          case 1: {
            LaneArray<float> total{};
            exclusive_scan_add(w, v, width, kFullMask, &total);
            for (int lane = 0; lane < kWarpSize; ++lane) {
              v[lane] += total[lane];
            }
            break;
          }
          case 2: reduce_add(w, v, width); break;
          default: reduce_min(w, v, width); break;
        }
        return v;
      };
      const LaneArray<float> pascal = run(ExecMode::Pascal);
      const LaneArray<float> volta = run(ExecMode::Volta);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        ASSERT_EQ(pascal[lane], volta[lane])
            << "width " << width << " trial " << trial << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, VoltaSyncCountsMatchTheStageFormula) {
  // Every *_sync collective carries one implicit syncwarp; a width-w scan
  // or butterfly reduction is log2(w) shuffle stages.
  Xoshiro256 rng(301);
  for (int width : kWidths) {
    const std::uint64_t log2w = stages(width);
    auto count = [&](auto&& op) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      op(w, v);
      return c.syncwarp;
    };
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                inclusive_scan_add(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                exclusive_scan_add(w, v, width);
              }),
              log2w);
    // The segment-total broadcast is one extra shfl.
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                LaneArray<int> total{};
                exclusive_scan_add(w, v, width, kFullMask, &total);
              }),
              log2w + 1);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_add(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_min(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_max(w, v, width);
              }),
              log2w);
  }
}

TEST(WarpProperties, PascalExecutesAndCountsZeroSynchronisation) {
  Xoshiro256 rng(302);
  for (int width : kWidths) {
    OpCounts c;
    Warp w(ExecMode::Pascal, c);
    LaneArray<int> v = random_ints(rng);
    inclusive_scan_add(w, v, width);
    reduce_add(w, v, width);
    LaneArray<int> total{};
    exclusive_scan_add(w, v, width, kFullMask, &total);
    EXPECT_EQ(c.syncwarp, 0u) << "width " << width;
    EXPECT_EQ(c.tile_sync, 0u) << "width " << width;
  }
}

TEST(WarpProperties, BallotCompactionAssignsDenseSlotsInLaneOrder) {
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 16; ++trial) {
    OpCounts c;
    Warp w(ExecMode::Volta, c);
    LaneArray<bool> pred{};
    for (auto& p : pred) p = (rng.next() & 1u) != 0;
    const lane_mask votes = w.ballot(pred);
    EXPECT_EQ(c.syncwarp, 1u); // one implicit barrier per ballot
    int rank = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      EXPECT_EQ(lane_active(votes, lane), pred[lane]) << "lane " << lane;
      if (pred[lane]) {
        EXPECT_EQ(compact_slot(w, votes, lane), rank) << "lane " << lane;
        ++rank;
      }
    }
    EXPECT_EQ(rank, popc(votes));
  }
}

TEST(WarpProperties, UndercoveringMaskThrowsUnderVoltaOnly) {
  // The paper's half-warp pitfall: a mask that misses an arriving lane is
  // undefined behaviour on Volta (modelled as WarpError) and harmless on
  // Pascal, which has no mask argument to get wrong.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 16; ++trial) {
    const lane_mask active = random_mask(rng) | 0x3u; // at least two lanes
    const lane_mask bad = active & ~lane_bit(lowest_lane(active));
    {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      w.diverge(active);
      LaneArray<int> v{};
      EXPECT_THROW(w.shfl_down(v, 1, kWarpSize, bad), WarpError);
    }
    {
      OpCounts c;
      Warp w(ExecMode::Pascal, c);
      w.diverge(active);
      LaneArray<int> v{};
      EXPECT_NO_THROW(w.shfl_down(v, 1, kWarpSize, bad));
    }
  }
}

TEST(WarpProperties, SimdAndScalarReductionsAreBitIdenticalOnRandomMasks) {
  // The AVX2 fast path of the float butterflies (simt/simd.hpp) must be a
  // pure implementation detail: same registers bit for bit — including
  // untouched inactive lanes and IEEE special values — and same op
  // tallies, for every width and random active mask.
  if (!simd_available()) GTEST_SKIP() << "AVX2 unavailable on this host";
  Xoshiro256 rng(505);
  for (int width : kWidths) {
    for (int trial = 0; trial < 32; ++trial) {
      const lane_mask active = random_mask(rng);
      LaneArray<float> base = random_floats(rng);
      // Sprinkle IEEE specials (canonical quiet NaN so payload picks can't
      // differ, infinities, signed zeros) over a few lanes.
      for (int k = 0; k < 4; ++k) {
        const int lane = static_cast<int>(rng.next() % kWarpSize);
        switch (rng.next() % 4) {
          case 0: base[lane] = std::numeric_limits<float>::quiet_NaN(); break;
          case 1: base[lane] = std::numeric_limits<float>::infinity(); break;
          case 2: base[lane] = -std::numeric_limits<float>::infinity(); break;
          default: base[lane] = -0.0f; break;
        }
      }
      const ExecMode mode =
          (trial & 1) != 0 ? ExecMode::Volta : ExecMode::Pascal;
      auto run = [&](bool use_simd, OpCounts& c) {
        ScopedSimd guard(use_simd);
        Warp w(mode, c);
        w.diverge(active);
        LaneArray<float> v = base;
        switch (trial % 3) {
          case 0: reduce_add(w, v, width); break;
          case 1: reduce_min(w, v, width); break;
          default: reduce_max(w, v, width); break;
        }
        return v;
      };
      OpCounts scalar_counts, simd_counts;
      const LaneArray<float> scalar = run(false, scalar_counts);
      const LaneArray<float> simd = run(true, simd_counts);
      ASSERT_EQ(scalar_counts, simd_counts)
          << "op tallies diverged at width " << width << " trial " << trial;
      for (int lane = 0; lane < kWarpSize; ++lane) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(scalar[lane]),
                  std::bit_cast<std::uint32_t>(simd[lane]))
            << "width " << width << " trial " << trial << " lane " << lane
            << " scalar " << scalar[lane] << " simd " << simd[lane];
      }
    }
  }
}

TEST(WarpProperties, SimdSelectorReportsAndRestoresState) {
  // set_simd_enabled is clamped to availability and ScopedSimd restores
  // the previous state on every exit path.
  const bool initial = simd_enabled();
  {
    ScopedSimd off(false);
    EXPECT_FALSE(simd_enabled());
    {
      ScopedSimd on(true);
      EXPECT_EQ(simd_enabled(), simd_available());
    }
    EXPECT_FALSE(simd_enabled());
  }
  EXPECT_EQ(simd_enabled(), initial);
  if (!simd_compiled()) {
    EXPECT_FALSE(simd_available());
  }
}

} // namespace
} // namespace gothic::simt
