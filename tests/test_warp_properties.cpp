// Property-based tests for the warp collectives: random lane values and
// active masks across every tile width (2..32), checking the algebraic
// contracts (segment prefix sums, segment reductions, dense compaction
// slots), bit-identical Pascal/Volta results on identical inputs, the
// Volta syncwarp counts against the log2(width) stage formula, and the
// mask-coverage pitfall (§2.1) under both modes.
#include "simt/scan.hpp"
#include "simt/warp.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>

namespace gothic::simt {
namespace {

constexpr std::array<int, 5> kWidths{2, 4, 8, 16, 32};

std::uint64_t stages(int width) {
  return static_cast<std::uint64_t>(
      std::countr_zero(static_cast<unsigned>(width)));
}

LaneArray<int> random_ints(Xoshiro256& rng) {
  LaneArray<int> v{};
  for (auto& x : v) x = static_cast<int>(rng.next() % 201) - 100;
  return v;
}

LaneArray<float> random_floats(Xoshiro256& rng) {
  LaneArray<float> v{};
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

lane_mask random_mask(Xoshiro256& rng) {
  const auto m = static_cast<lane_mask>(rng.next());
  return m == 0 ? lane_mask{1} : m;
}

TEST(WarpProperties, InclusiveScanMatchesSequentialPrefixForEveryWidth) {
  Xoshiro256 rng(101);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      const LaneArray<int> orig = v;
      inclusive_scan_add(w, v, width);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        int expect = 0;
        for (int j = (lane / width) * width; j <= lane; ++j) {
          expect += orig[j];
        }
        ASSERT_EQ(v[lane], expect) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, ExclusiveScanYieldsOffsetsAndSegmentTotals) {
  Xoshiro256 rng(102);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      const LaneArray<int> orig = v;
      LaneArray<int> total{};
      exclusive_scan_add(w, v, width, kFullMask, &total);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int base = (lane / width) * width;
        int expect = 0;
        for (int j = base; j < lane; ++j) expect += orig[j];
        int seg = 0;
        for (int j = base; j < base + width; ++j) seg += orig[j];
        ASSERT_EQ(v[lane], expect) << "width " << width << " lane " << lane;
        ASSERT_EQ(total[lane], seg) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, ReductionsMatchSegmentAggregatesForEveryWidth) {
  Xoshiro256 rng(103);
  for (int width : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      const LaneArray<int> orig = random_ints(rng);
      LaneArray<int> sum = orig;
      LaneArray<int> lo = orig;
      LaneArray<int> hi = orig;
      reduce_add(w, sum, width);
      reduce_min(w, lo, width);
      reduce_max(w, hi, width);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        const int base = (lane / width) * width;
        int s = 0;
        int mn = orig[base];
        int mx = orig[base];
        for (int j = base; j < base + width; ++j) {
          s += orig[j];
          mn = std::min(mn, orig[j]);
          mx = std::max(mx, orig[j]);
        }
        ASSERT_EQ(sum[lane], s) << "width " << width << " lane " << lane;
        ASSERT_EQ(lo[lane], mn) << "width " << width << " lane " << lane;
        ASSERT_EQ(hi[lane], mx) << "width " << width << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, PascalAndVoltaAreBitIdenticalOnRandomMasks) {
  // The modes differ in synchronisation, never in data: identical inputs
  // (values, active mask, width) must produce identical registers on every
  // lane, including float operations (same order of operations).
  Xoshiro256 rng(202);
  for (int width : kWidths) {
    for (int trial = 0; trial < 16; ++trial) {
      const lane_mask active = random_mask(rng);
      const LaneArray<float> base = random_floats(rng);
      auto run = [&](ExecMode mode) {
        OpCounts c;
        Warp w(mode, c);
        w.diverge(active);
        LaneArray<float> v = base;
        switch (trial % 4) {
          case 0: inclusive_scan_add(w, v, width); break;
          case 1: {
            LaneArray<float> total{};
            exclusive_scan_add(w, v, width, kFullMask, &total);
            for (int lane = 0; lane < kWarpSize; ++lane) {
              v[lane] += total[lane];
            }
            break;
          }
          case 2: reduce_add(w, v, width); break;
          default: reduce_min(w, v, width); break;
        }
        return v;
      };
      const LaneArray<float> pascal = run(ExecMode::Pascal);
      const LaneArray<float> volta = run(ExecMode::Volta);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        ASSERT_EQ(pascal[lane], volta[lane])
            << "width " << width << " trial " << trial << " lane " << lane;
      }
    }
  }
}

TEST(WarpProperties, VoltaSyncCountsMatchTheStageFormula) {
  // Every *_sync collective carries one implicit syncwarp; a width-w scan
  // or butterfly reduction is log2(w) shuffle stages.
  Xoshiro256 rng(301);
  for (int width : kWidths) {
    const std::uint64_t log2w = stages(width);
    auto count = [&](auto&& op) {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      LaneArray<int> v = random_ints(rng);
      op(w, v);
      return c.syncwarp;
    };
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                inclusive_scan_add(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                exclusive_scan_add(w, v, width);
              }),
              log2w);
    // The segment-total broadcast is one extra shfl.
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                LaneArray<int> total{};
                exclusive_scan_add(w, v, width, kFullMask, &total);
              }),
              log2w + 1);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_add(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_min(w, v, width);
              }),
              log2w);
    EXPECT_EQ(count([&](Warp& w, LaneArray<int>& v) {
                reduce_max(w, v, width);
              }),
              log2w);
  }
}

TEST(WarpProperties, PascalExecutesAndCountsZeroSynchronisation) {
  Xoshiro256 rng(302);
  for (int width : kWidths) {
    OpCounts c;
    Warp w(ExecMode::Pascal, c);
    LaneArray<int> v = random_ints(rng);
    inclusive_scan_add(w, v, width);
    reduce_add(w, v, width);
    LaneArray<int> total{};
    exclusive_scan_add(w, v, width, kFullMask, &total);
    EXPECT_EQ(c.syncwarp, 0u) << "width " << width;
    EXPECT_EQ(c.tile_sync, 0u) << "width " << width;
  }
}

TEST(WarpProperties, BallotCompactionAssignsDenseSlotsInLaneOrder) {
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 16; ++trial) {
    OpCounts c;
    Warp w(ExecMode::Volta, c);
    LaneArray<bool> pred{};
    for (auto& p : pred) p = (rng.next() & 1u) != 0;
    const lane_mask votes = w.ballot(pred);
    EXPECT_EQ(c.syncwarp, 1u); // one implicit barrier per ballot
    int rank = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      EXPECT_EQ(lane_active(votes, lane), pred[lane]) << "lane " << lane;
      if (pred[lane]) {
        EXPECT_EQ(compact_slot(w, votes, lane), rank) << "lane " << lane;
        ++rank;
      }
    }
    EXPECT_EQ(rank, popc(votes));
  }
}

TEST(WarpProperties, UndercoveringMaskThrowsUnderVoltaOnly) {
  // The paper's half-warp pitfall: a mask that misses an arriving lane is
  // undefined behaviour on Volta (modelled as WarpError) and harmless on
  // Pascal, which has no mask argument to get wrong.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 16; ++trial) {
    const lane_mask active = random_mask(rng) | 0x3u; // at least two lanes
    const lane_mask bad = active & ~lane_bit(lowest_lane(active));
    {
      OpCounts c;
      Warp w(ExecMode::Volta, c);
      w.diverge(active);
      LaneArray<int> v{};
      EXPECT_THROW(w.shfl_down(v, 1, kWarpSize, bad), WarpError);
    }
    {
      OpCounts c;
      Warp w(ExecMode::Pascal, c);
      w.diverge(active);
      LaneArray<int> v{};
      EXPECT_NO_THROW(w.shfl_down(v, 1, kWarpSize, bad));
    }
  }
}

} // namespace
} // namespace gothic::simt
