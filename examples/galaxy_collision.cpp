// Two Plummer spheres on a head-on collision orbit — the classic
// interacting-galaxies scenario the tree method exists for (no symmetry
// to exploit, deep force hierarchies, violent relaxation).
//
//   ./galaxy_collision [n_per_galaxy] [n_steps]
#include "galaxy/spherical_sampler.hpp"
#include "nbody/simulation.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

namespace {

using namespace gothic;

/// Merge two particle sets, offsetting the second in phase space.
nbody::Particles collide(nbody::Particles a, const nbody::Particles& b,
                         real dx, real dvx) {
  const std::size_t na = a.size();
  const std::size_t n = na + b.size();
  auto grow = [n](std::vector<real>& v) { v.resize(n, real(0)); };
  grow(a.x); grow(a.y); grow(a.z);
  grow(a.vx); grow(a.vy); grow(a.vz);
  grow(a.ax); grow(a.ay); grow(a.az);
  grow(a.pot); grow(a.m); grow(a.aold_mag);
  for (std::size_t i = 0; i < b.size(); ++i) {
    a.x[na + i] = b.x[i] + dx;
    a.y[na + i] = b.y[i] + real(0.5); // small impact parameter
    a.z[na + i] = b.z[i];
    a.vx[na + i] = b.vx[i] - dvx;
    a.vy[na + i] = b.vy[i];
    a.vz[na + i] = b.vz[i];
    a.m[na + i] = b.m[i];
  }
  for (std::size_t i = 0; i < na; ++i) {
    a.x[i] -= dx;
    a.vx[i] += dvx;
  }
  return a;
}

} // namespace

int main(int argc, char** argv) {
  const std::size_t n_each =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 128;

  // Two equal Plummer galaxies approaching at half the mutual parabolic
  // speed: a bound merger.
  nbody::Particles g1 = galaxy::make_plummer(n_each, 1.0, 1.0, 1);
  nbody::Particles g2 = galaxy::make_plummer(n_each, 1.0, 1.0, 2);
  const real sep = real(6);
  const real vapp = real(0.5) * std::sqrt(real(2) * real(2.0) / (2 * sep));
  nbody::Particles ic = collide(std::move(g1), g2, sep / 2, vapp / 2);

  nbody::SimConfig cfg;
  cfg.walk.mac.dacc = real(1.0 / 512);
  cfg.walk.eps = real(0.02);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 8;
  cfg.max_level = 6;
  nbody::Simulation sim(std::move(ic), cfg);

  // Track the separation of the two galaxies' centres of mass.
  auto separation = [&sim, n_each] {
    const auto& p = sim.particles();
    // Particles were permuted into tree order; track by mass-weighted
    // half-split is no longer possible, so tag by initial x sign instead:
    // use the bulk velocity split — simplest robust proxy: centroid of the
    // third of particles with most-negative vs most-positive x.
    double c1x = 0, c2x = 0, c1n = 0, c2n = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.vx[i] > 0) {
        c1x += p.x[i];
        ++c1n;
      } else {
        c2x += p.x[i];
        ++c2n;
      }
    }
    return std::fabs(c1x / std::max(c1n, 1.0) - c2x / std::max(c2n, 1.0));
  };

  sim.refresh_forces();
  const nbody::Energies e0 = sim.energies();
  std::cout << "two Plummer galaxies, N = " << 2 * n_each
            << ", initial separation " << sep << ", E = " << e0.total()
            << (e0.total() < 0 ? " (bound: will merge)\n" : "\n");

  Table t("merger progress", {"t", "COM separation", "E drift"});
  const int report_every = std::max(steps / 8, 1);
  for (int s = 1; s <= steps; ++s) {
    (void)sim.step();
    if (s % report_every == 0) {
      sim.refresh_forces();
      const nbody::Energies e = sim.energies();
      t.add_row({Table::fix(sim.time(), 2), Table::fix(separation(), 3),
                 Table::sci(std::fabs((e.total() - e0.total()) /
                                      e0.total()))});
    }
  }
  t.print(std::cout);
  std::cout << "tree rebuilds: " << sim.rebuild_count()
            << "; gravity time share: "
            << sim.timers().seconds(Kernel::WalkTree) /
                   sim.timers().total_seconds()
            << "\n";
  return 0;
}
