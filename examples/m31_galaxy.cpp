// The paper's workload: an N-body model of the Andromeda galaxy (M31),
// evolved with GOTHIC's pipeline, with the per-function breakdown and the
// modelled Tesla V100 / P100 step times printed alongside.
//
//   ./m31_galaxy [n_particles] [n_steps]
#include "galaxy/m31.hpp"
#include "galaxy/units.hpp"
#include "nbody/simulation.hpp"
#include "perfmodel/exec_model.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/tuning.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace gothic;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 16;

  std::cout << "building the S2.2 M31 model (NFW halo + Sersic stellar halo "
               "+ Hernquist bulge + exponential disk), N = " << n << " ...\n";
  const galaxy::M31Model model;
  nbody::Particles ic = model.realize(n, /*seed=*/7);
  std::cout << "  rotation curve: vc(10 kpc) = "
            << model.disk().vcirc(10.0) * galaxy::units::kVelocityUnitKms
            << " km/s; Toomre Q minimum "
            << model.disk().toomre_q(model.disk().q_min_radius())
            << " at R = " << model.disk().q_min_radius() << " kpc\n";

  nbody::SimConfig cfg;
  cfg.walk.mac.dacc = real(1.0 / 512); // the paper's fiducial 2^-9
  cfg.walk.eps = real(0.0156);
  cfg.eta = 0.25;
  cfg.dt_max = 1.0 / 8; // ~0.6 Myr ticks at max_level
  cfg.max_level = 6;

  nbody::Simulation sim(std::move(ic), cfg);
  sim.refresh_forces();
  const nbody::Energies e0 = sim.energies();
  sim.run(steps);
  sim.refresh_forces();
  const nbody::Energies e1 = sim.energies();

  std::cout << "evolved " << steps << " block steps to t = "
            << sim.time() * galaxy::units::kTimeUnitMyr
            << " Myr; relative energy drift = "
            << std::fabs((e1.total() - e0.total()) / e0.total()) << "\n\n";

  // Host wall-clock breakdown plus the modelled device times.
  Table t("per-kernel accounting (" + std::to_string(steps) + " steps)",
          {"kernel", "host wall [s]", "V100 model [s/step]",
           "P100 model [s/step]"});
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  using perfmodel::GothicKernel;
  const GothicKernel shape[] = {GothicKernel::WalkTree, GothicKernel::CalcNode,
                                GothicKernel::MakeTree, GothicKernel::Predict};
  const Kernel kernels[] = {Kernel::WalkTree, Kernel::CalcNode,
                            Kernel::MakeTree, Kernel::PredictCorrect};
  for (int i = 0; i < 4; ++i) {
    perfmodel::KernelLaunchInfo info;
    info.resources = perfmodel::kernel_resources(shape[i], 512);
    simt::OpCounts per_step = sim.kernel_ops(kernels[i]);
    auto scale = [&](std::uint64_t v) {
      return v / static_cast<std::uint64_t>(steps);
    };
    simt::OpCounts s{};
    s.int_ops = scale(per_step.int_ops);
    s.fp32_fma = scale(per_step.fp32_fma);
    s.fp32_mul = scale(per_step.fp32_mul);
    s.fp32_add = scale(per_step.fp32_add);
    s.fp32_special = scale(per_step.fp32_special);
    s.bytes_load = scale(per_step.bytes_load);
    s.bytes_store = scale(per_step.bytes_store);
    t.add_row({std::string(kernel_name(kernels[i])),
               Table::sci(sim.timers().seconds(kernels[i])),
               Table::sci(perfmodel::predict_kernel_time(v100, s, info).total_s),
               Table::sci(perfmodel::predict_kernel_time(p100, s, info).total_s)});
  }
  t.print(std::cout);
  std::cout << "(paper, N = 2^23, dacc = 2^-9: 3.3e-2 s/step on V100 "
               "compute_60, 7.4e-2 s/step on P100)\n";
  return 0;
}
