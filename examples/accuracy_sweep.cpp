// MAC comparison — the §1 claim: the acceleration MAC (Eq. 2) reaches a
// given force accuracy with less work than geometric criteria
// (opening-angle and GADGET-style cell-edge MACs), as reported by
// Nelson et al. 2009 and Miki & Umemura 2017.
//
//   ./accuracy_sweep [n_particles]
#include "galaxy/spherical_sampler.hpp"
#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

namespace {

using namespace gothic;

struct Workload {
  nbody::Particles p;
  octree::Octree tree;
  std::vector<real> amag;
  std::vector<double> rx, ry, rz; // double-precision reference forces
};

Workload prepare(std::size_t n) {
  Workload w;
  w.p = galaxy::make_plummer(n, 1.0, 1.0, 11);
  std::vector<index_t> perm;
  octree::build_tree(w.p.x, w.p.y, w.p.z, w.tree, perm,
                     octree::BuildConfig{});
  w.p.apply_permutation(perm);
  octree::calc_node(w.tree, w.p.x, w.p.y, w.p.z, w.p.m);

  // Bootstrap |a| for the acceleration MAC.
  gravity::WalkConfig boot;
  boot.eps = real(0.02);
  boot.mac.type = gravity::MacType::OpeningAngle;
  std::vector<real> ax(n), ay(n), az(n);
  gravity::walk_tree(w.tree, w.p.x, w.p.y, w.p.z, w.p.m, {}, boot, ax, ay,
                     az);
  w.amag.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
  }

  w.rx.resize(n);
  w.ry.resize(n);
  w.rz.resize(n);
  gravity::direct_forces_ref(w.p.x, w.p.y, w.p.z, w.p.m, 0.02, 1.0, w.rx,
                             w.ry, w.rz);
  return w;
}

struct Sample {
  double error;          ///< 99th-percentile relative force error
  double interactions;   ///< per particle
};

Sample run(const Workload& w, const gravity::MacParams& mac) {
  const std::size_t n = w.p.size();
  gravity::WalkConfig cfg;
  cfg.eps = real(0.02);
  cfg.mac = mac;
  std::vector<real> ax(n), ay(n), az(n);
  gravity::WalkStats stats;
  gravity::walk_tree(w.tree, w.p.x, w.p.y, w.p.z, w.p.m, w.amag, cfg, ax, ay,
                     az, {}, nullptr, &stats);
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = ax[i] - w.rx[i];
    const double dy = ay[i] - w.ry[i];
    const double dz = az[i] - w.rz[i];
    const double ref = std::sqrt(w.rx[i] * w.rx[i] + w.ry[i] * w.ry[i] +
                                 w.rz[i] * w.rz[i]);
    err[i] = std::sqrt(dx * dx + dy * dy + dz * dz) / std::max(ref, 1e-12);
  }
  const auto q = static_cast<std::size_t>(0.99 * n);
  std::nth_element(err.begin(), err.begin() + static_cast<long>(q), err.end());
  return {err[q], static_cast<double>(stats.interactions) / n};
}

} // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const Workload w = prepare(n);

  Table t("force accuracy vs work per MAC (Plummer, N=" + std::to_string(n) +
              ")",
          {"MAC", "parameter", "99% error", "interactions/particle"});
  for (const double dacc : {1.0 / 8, 1.0 / 64, 1.0 / 512, 1.0 / 4096}) {
    gravity::MacParams mac;
    mac.type = gravity::MacType::Acceleration;
    mac.dacc = static_cast<real>(dacc);
    const Sample s = run(w, mac);
    t.add_row({"acceleration", Table::sci(dacc), Table::sci(s.error),
               Table::fix(s.interactions, 0)});
  }
  for (const double theta : {1.0, 0.7, 0.5, 0.3}) {
    gravity::MacParams mac;
    mac.type = gravity::MacType::OpeningAngle;
    mac.theta = static_cast<real>(theta);
    const Sample s = run(w, mac);
    t.add_row({"opening-angle", Table::fix(theta, 2), Table::sci(s.error),
               Table::fix(s.interactions, 0)});
  }
  for (const double dacc : {1.0 / 8, 1.0 / 64, 1.0 / 512, 1.0 / 4096}) {
    gravity::MacParams mac;
    mac.type = gravity::MacType::Gadget;
    mac.dacc = static_cast<real>(dacc);
    const Sample s = run(w, mac);
    t.add_row({"gadget (cell edge)", Table::sci(dacc), Table::sci(s.error),
               Table::fix(s.interactions, 0)});
  }
  t.print(std::cout);
  std::cout << "reading: at matched error levels the acceleration MAC "
               "needs the fewest interactions (the S1 rationale for "
               "GOTHIC's choice).\n";
  return 0;
}
