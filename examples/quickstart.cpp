// Quickstart: evolve an equilibrium Plummer sphere with the GOTHIC
// pipeline (tree gravity + block time steps + auto-tuned rebuilds) and
// check energy conservation.
//
//   ./quickstart [n_particles] [n_steps]
#include "galaxy/spherical_sampler.hpp"
#include "nbody/simulation.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace gothic;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 64;

  // 1. Initial conditions: a Plummer sphere in virial equilibrium
  //    (G = M = a = 1).
  nbody::Particles ic = galaxy::make_plummer(n, 1.0, 1.0, /*seed=*/42);

  // 2. Configure the pipeline: acceleration MAC at the paper's fiducial
  //    accuracy, block time steps on.
  nbody::SimConfig cfg;
  cfg.walk.mac.type = gravity::MacType::Acceleration;
  cfg.walk.mac.dacc = real(1.0 / 512); // 2^-9
  cfg.walk.eps = real(0.02);
  cfg.eta = 0.2;
  cfg.dt_max = 1.0 / 16;
  cfg.max_level = 6;

  nbody::Simulation sim(std::move(ic), cfg);
  sim.refresh_forces();
  const nbody::Energies e0 = sim.energies();
  std::cout << "initial: E = " << e0.total() << ", virial ratio -2K/W = "
            << e0.virial_ratio() << "\n";

  // 3. Evolve.
  std::size_t active = 0;
  for (int s = 0; s < steps; ++s) active += sim.step().n_active;

  // 4. Report.
  sim.refresh_forces();
  const nbody::Energies e1 = sim.energies();
  std::cout << "after " << steps << " block steps (t = " << sim.time()
            << "): E = " << e1.total() << ", drift = "
            << std::fabs((e1.total() - e0.total()) / e0.total()) << "\n";
  std::cout << "average fraction of particles corrected per step: "
            << static_cast<double>(active) / (static_cast<double>(steps) * n)
            << " (block time steps at work)\n";

  Table t("wall-clock per kernel (host simulation of the device code)",
          {"kernel", "seconds", "calls"});
  for (const Kernel k : {Kernel::WalkTree, Kernel::CalcNode, Kernel::MakeTree,
                         Kernel::PredictCorrect}) {
    t.add_row({std::string(kernel_name(k)),
               Table::sci(sim.timers().seconds(k)),
               Table::num(static_cast<long long>(sim.timers().calls(k)))});
  }
  t.print(std::cout);
  std::cout << "tree rebuilds: " << sim.rebuild_count()
            << " (auto-tuned interval, currently "
            << sim.rebuild_policy().target_interval() << " steps)\n";
  return 0;
}
