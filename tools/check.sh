#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the runtime layer.
#
#   tools/check.sh            # full: verify + TSan runtime/walk tests
#   tools/check.sh --fast     # verify only
#
# The TSan stage rebuilds test_runtime and test_walk_tree in a separate
# build tree (build-tsan/) with GOTHIC_SANITIZE=thread, exercising the
# Device worker pool's fork/join handshake and the per-launch merge locks
# under a real data-race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 verify =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== TSan: runtime + walk_tree =="
cmake -B build-tsan -S . -DGOTHIC_SANITIZE=thread \
      -DGOTHIC_BUILD_BENCH=OFF -DGOTHIC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j --target test_runtime test_walk_tree
(cd build-tsan && ./tests/test_runtime && ./tests/test_walk_tree)

echo "check.sh: all stages passed"
