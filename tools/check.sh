#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the runtime layer.
#
#   tools/check.sh            # full: verify (both schedulers) + TSan
#   tools/check.sh --fast     # verify only
#
# The tier-1 suite runs twice: once with GOTHIC_ASYNC=1 (the default
# asynchronous stream scheduler) and once with GOTHIC_ASYNC=0 (the
# synchronous escape hatch) — results must be identical.
#
# The SIMD stage repeats tier-1 plus a fuzz smoke under GOTHIC_SIMD=1
# (AVX2 lane kernels) and GOTHIC_SIMD=0 (scalar oracle) — the two warp
# substrates must be bit-identical.
#
# The observability smoke validates the Perfetto trace (zero dropped
# records), the flight-recorder incident dump left by a fault-injected
# fuzz run, and the bench JSON; the telemetry stage validates the
# GOTHIC_TELEMETRY JSONL stream under every scheduler x substrate
# combination; the bench_diff gate compares the fresh BENCH reports
# against the archived trajectory in bench-results/ (and self-tests with
# a synthetic slowdown) before promoting them.
#
# The fuzz stage drives gothic_fuzz — seeded + exhaustively enumerated
# interleavings of the step DAG checked bit-identical against the
# synchronous reference, plus fault-injection plans (launch-body throws,
# worker stalls) checked for first-wins error propagation and device
# reuse — under both scheduler modes. Its scenario legs sweep seeds whose
# bits also select the workload from the scenario registry, so one
# printed seed reproduces ICs + force law + schedule together.
#
# The scenario stage runs the physics-oracle matrix (force error vs
# direct summation, energy drift, momentum balance — parameterized over
# every registry entry) plus the per-scenario bit-identity suite under
# both scheduler modes, then sweeps bench_scenario and validates one
# golden-schema BENCH_scenario_<name>.json per scenario before the
# bench_diff gate promotes them into bench-results/.
#
# The service stage runs the session-pool suites (ctest -L service) under
# both scheduler modes, sweeps the gothic_fuzz service leg (seeded pooled
# fault plans asserting session isolation + solo bit-identity), smokes
# gothic_serve end-to-end with per-session telemetry/trace/checkpoint
# streams, and validates a golden-schema BENCH_service.json through the
# bench_diff gate.
#
# The TSan stage rebuilds test_runtime, test_walk_tree, test_service and
# gothic_fuzz in a separate build tree (build-tsan/) with
# GOTHIC_SANITIZE=thread and runs them under both scheduler modes,
# exercising the lane leaders' queue handshake, the cross-stream event
# waits, the team fork/join, the per-launch merge locks, the
# fault-injection paths and the session pool's driver handoff under a
# real data-race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 verify =="
cmake -B build -S . >/dev/null
cmake --build build -j
echo "-- ctest (GOTHIC_ASYNC=1, stream scheduler) --"
(cd build && GOTHIC_ASYNC=1 ctest --output-on-failure -j)
echo "-- ctest (GOTHIC_ASYNC=0, synchronous escape hatch) --"
(cd build && GOTHIC_ASYNC=0 ctest --output-on-failure -j)

echo "== observability smoke (trace + flight + bench JSON, both scheduler modes) =="
# A traced driver step must emit valid Perfetto JSON with zero dropped
# launch records (a non-zero count means the timeline is silently
# truncated), a figure bench must emit a parseable BENCH_*.json, and a
# fault-injected gothic_fuzz run must leave a valid flight-recorder
# incident dump naming the faulted launch — under both schedulers.
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  (cd build &&
    GOTHIC_ASYNC=$mode GOTHIC_TRACE=smoke_trace.json \
      ./tools/gothic_run --model=plummer --n=2048 --steps=2 --metrics \
        >/dev/null &&
    python3 -m json.tool smoke_trace.json >/dev/null &&
    python3 -c "
import json
n = json.load(open('smoke_trace.json'))['otherData']['dropped_records']
assert n == 0, 'trace dropped %d launch records' % n" &&
    rm -f smoke_trace.json &&
    GOTHIC_ASYNC=$mode GOTHIC_BENCH_N=4096 GOTHIC_BENCH_STEPS=1 \
      GOTHIC_BENCH_DACC_MIN=2 ./bench/bench_fig04_breakdown_macc \
        >/dev/null &&
    python3 -m json.tool BENCH_fig04_breakdown_macc.json >/dev/null &&
    rm -f BENCH_fig04_breakdown_macc.json &&
    rm -f smoke_flight*.json &&
    GOTHIC_ASYNC=$mode GOTHIC_FLIGHT=smoke_flight.json \
      ./tools/gothic_fuzz --schedules=0 --enumerate=0 --faults=4 \
        >/dev/null &&
    python3 -c "
import json
d = json.load(open('smoke_flight.json'))['flight_recorder']
assert d['launches'], 'flight dump holds no launches'
assert 'injected fault' in d['reason'], d['reason']" &&
    rm -f smoke_flight*.json)
done
echo "observability smoke passed"

echo "== telemetry stream (GOTHIC_ASYNC x GOTHIC_SIMD) =="
# GOTHIC_TELEMETRY streams one schema-pinned JSONL record per step plus a
# leading config line; every line must parse and the stream must cover
# every step under each scheduler x warp-substrate combination.
for mode in 1 0; do
  for simd in 1 0; do
    echo "-- GOTHIC_ASYNC=$mode GOTHIC_SIMD=$simd --"
    (cd build &&
      rm -f smoke_telemetry.jsonl &&
      GOTHIC_ASYNC=$mode GOTHIC_SIMD=$simd \
        GOTHIC_TELEMETRY=smoke_telemetry.jsonl \
        ./tools/gothic_run --model=plummer --n=2048 --steps=3 >/dev/null &&
      python3 -c "
import json
lines = [json.loads(l) for l in open('smoke_telemetry.jsonl') if l.strip()]
assert lines and lines[0]['type'] == 'config', 'missing config line'
steps = [l for l in lines if l['type'] == 'step']
assert len(steps) == 3, 'expected 3 step records, got %d' % len(steps)
for s in steps:
    assert 'kernels' in s and 'wall_seconds' in s, sorted(s)" &&
      rm -f smoke_telemetry.jsonl)
  done
done
echo "telemetry stage passed"

echo "== bench smoke: load balancing (both scheduler modes) =="
# bench_balance compares the three walk schedules at a small N, asserts
# bit-identical accelerations, and must emit a BENCH_balance.json that
# passes both a raw JSON parse and the golden-schema test. 4 workers so
# the imbalance ratio is meaningful on single-core CI runners. Fresh
# reports land in bench-fresh/ (kept on failure as evidence); the
# bench_diff gate below compares them against the archived trajectory in
# bench-results/ and promotes them into it.
rm -rf bench-fresh
mkdir -p bench-fresh
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  (cd build &&
    GOTHIC_ASYNC=$mode GOTHIC_THREADS=4 GOTHIC_BENCH_N=4096 \
      GOTHIC_BENCH_STEPS=2 ./bench/bench_balance >/dev/null &&
    python3 -m json.tool BENCH_balance.json >/dev/null &&
    GOTHIC_BENCH_VALIDATE_JSON=BENCH_balance.json ./tests/test_bench_support \
      --gtest_filter='ExternalReport.*' >/dev/null &&
    mv BENCH_balance.json \
      "../bench-fresh/BENCH_balance.async$mode.json")
done
echo "bench smoke passed"

echo "== SIMD substrate: scalar vs AVX2 lane kernels =="
# GOTHIC_SIMD selects the warp substrate at runtime: 1 = the AVX2 lane
# kernels (when compiled in and the CPU reports AVX2), 0 = the scalar
# oracle. Results and op counts are bit-identical by contract (DESIGN.md,
# "SIMD substrate"), so the whole tier-1 suite plus a fuzz smoke run
# under both settings; on a host without AVX2 the =1 leg degrades to the
# scalar path and the stage still passes.
for simd in 1 0; do
  echo "-- GOTHIC_SIMD=$simd --"
  (cd build && GOTHIC_SIMD=$simd ctest --output-on-failure -j)
  GOTHIC_SIMD=$simd ./build/tools/gothic_fuzz --schedules=16 --faults=4
done
echo "SIMD stage passed"

echo "== schedule fuzz + fault injection (both scheduler modes) =="
# Seeded sweep (64 schedules), DFS enumeration, and 8 fault plans; every
# failing seed prints a gothic_fuzz --replay line. GOTHIC_ASYNC only
# selects the ambient scheduler — the fuzzer constructs its own devices —
# so running both modes checks the harness is environment-independent.
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  GOTHIC_ASYNC=$mode ./build/tools/gothic_fuzz --schedules=64 \
    --enumerate=64 --faults=8 --scenarios=6
done
echo "fuzz stage passed"

echo "== shard stage: K-shard bit-identity + LET traffic (both scheduler modes) =="
# The sharded pipeline's oracle, three ways under each ambient scheduler:
# ctest -L shard runs the partition/LET invariants and the K in {1,2,4}
# bit-identity suite (>= 8 steps, rebuilds included); bench_shard re-runs
# the oracle on the M31 workload and must emit a golden-schema
# BENCH_shard.json reporting busy-time imbalance and LET traffic; the
# sharded fuzz legs drive seeded per-shard-device schedules plus launch
# faults injected into one shard (one shard's failure must not poison the
# other shards' devices).
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  (cd build && GOTHIC_ASYNC=$mode ctest --output-on-failure -L shard -j)
  (cd build &&
    GOTHIC_ASYNC=$mode GOTHIC_THREADS=4 GOTHIC_BENCH_N=4096 \
      GOTHIC_BENCH_STEPS=8 ./bench/bench_shard >/dev/null &&
    python3 -m json.tool BENCH_shard.json >/dev/null &&
    GOTHIC_BENCH_VALIDATE_JSON=BENCH_shard.json ./tests/test_bench_support \
      --gtest_filter='ExternalReport.*' >/dev/null &&
    mv BENCH_shard.json "../bench-fresh/BENCH_shard.async$mode.json")
  GOTHIC_ASYNC=$mode ./build/tools/gothic_fuzz --schedules=0 --faults=0 \
    --shards=16 --shard-faults=6
done
echo "shard stage passed"

echo "== scenario stage: physics-oracle matrix + bench_scenario =="
# The parameterized invariance suite (force oracle vs direct summation,
# energy drift, momentum balance) and the per-scenario shard/SIMD/async
# bit-identity matrix, under both scheduler modes; then bench_scenario
# sweeps the registry and must emit one golden-schema
# BENCH_scenario_<name>.json per scenario — each validated by a raw JSON
# parse plus the ExternalReport schema test and handed to the bench_diff
# gate below (the scale fingerprint carries scenario name + force law, so
# the gate refuses cross-scenario comparisons).
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  (cd build && GOTHIC_ASYNC=$mode ctest --output-on-failure -j \
    -R 'Scenario|WalkTreeLJ')
done
(cd build &&
  rm -f BENCH_scenario_*.json &&
  GOTHIC_THREADS=4 GOTHIC_BENCH_N=2048 GOTHIC_BENCH_STEPS=8 \
    ./bench/bench_scenario >/dev/null)
for f in build/BENCH_scenario_*.json; do
  python3 -m json.tool "$f" >/dev/null
  (cd build && GOTHIC_BENCH_VALIDATE_JSON="$(basename "$f")" \
    ./tests/test_bench_support --gtest_filter='ExternalReport.*' >/dev/null)
  mv "$f" "bench-fresh/$(basename "$f")"
done
echo "scenario stage passed"

echo "== service stage: session pool (both scheduler modes) =="
# The multi-tenant session layer: ctest -L service runs the SessionManager
# suites (solo bit-identity oracle, quota reject-on-exceed, starvation
# bound, mixed-fault isolation stress) under each ambient scheduler; the
# gothic_fuzz service leg sweeps seeded pooled fault plans; gothic_serve
# drives a GOTHIC_SESSIONS-sized registry-cycled batch end-to-end with
# per-session telemetry / trace / checkpoint streams plus the oracle; and
# bench_service must emit a golden-schema BENCH_service.json for the
# bench_diff gate.
for mode in 1 0; do
  echo "-- GOTHIC_ASYNC=$mode --"
  (cd build && GOTHIC_ASYNC=$mode ctest --output-on-failure -L service -j)
  GOTHIC_ASYNC=$mode ./build/tools/gothic_fuzz --schedules=0 --faults=0 \
    --service=6 --n=128 --steps=3
done
(cd build &&
  rm -rf smoke_serve && mkdir -p smoke_serve &&
  GOTHIC_SESSIONS=6 ./tools/gothic_serve --devices=2 --steps=3 --n=256 \
    --oracle --metrics --telemetry-dir=smoke_serve --trace-dir=smoke_serve \
    --snapshot-every=2 --snapshot-dir=smoke_serve >/dev/null &&
  python3 -c "
import json
lines = [json.loads(l) for l in open('smoke_serve/s0.jsonl') if l.strip()]
assert lines and lines[0]['type'] == 'config', 'missing config line'
steps = [l for l in lines if l['type'] == 'step']
assert len(steps) == 3, 'expected 3 step records, got %d' % len(steps)
json.load(open('smoke_serve/s0.trace.json'))" &&
  test -s smoke_serve/s0.bin &&
  rm -rf smoke_serve)
(cd build &&
  GOTHIC_THREADS=2 GOTHIC_BENCH_N=8192 GOTHIC_BENCH_STEPS=2 \
    ./bench/bench_service >/dev/null &&
  python3 -m json.tool BENCH_service.json >/dev/null &&
  GOTHIC_BENCH_VALIDATE_JSON=BENCH_service.json ./tests/test_bench_support \
    --gtest_filter='ExternalReport.*' >/dev/null &&
  mv BENCH_service.json ../bench-fresh/BENCH_service.json)
echo "service stage passed"

echo "== perf-regression gate: bench_diff over the BENCH trajectory =="
# Gate the fresh reports against the archived trajectory in
# bench-results/, then promote them as its newest point
# (--update-baseline refuses the promotion over a regression). Smoke runs
# at N=4096 are noisy, so the CI gate is deliberately loose: more than 4x
# slower AND > 50 ms absolute. The first run on a clean tree simply seeds
# bench-results/.
./build/tools/bench_diff --baseline=bench-results --candidate=bench-fresh \
  --threshold=3.0 --abs-floor=0.05 --json=build/bench_diff.json \
  --update-baseline
python3 -m json.tool build/bench_diff.json >/dev/null

# Negative self-test: a synthetic 100x slowdown injected into one fresh
# report must trip the same gate.
rm -rf build/bench-slow
mkdir -p build/bench-slow
python3 -c "
import glob, json
src = sorted(glob.glob('bench-fresh/BENCH_*.json'))[0]
doc = json.load(open(src))
slowed = 0
for t in doc.get('tables', []):
    headers = [h.lower() for h in t['headers']]
    cols = [i for i, h in enumerate(headers)
            if 'second' in h or 'elapsed' in h or 'time' in h or '[s]' in h]
    for row in t['rows']:
        for c in cols:
            try:
                row[c] = repr(float(row[c]) * 100.0)
                slowed += 1
            except ValueError:
                pass
for p in doc.get('profiles', []):
    for key in ('kernel_seconds', 'wall_seconds'):
        if key in p.get('measured', {}):
            p['measured'][key] *= 100.0
            slowed += 1
assert slowed > 0, 'no timing surface found to slow down in ' + src
json.dump(doc, open('build/bench-slow/' + src.split('/')[-1], 'w'))"
if ./build/tools/bench_diff --baseline=bench-results \
    --candidate=build/bench-slow --threshold=3.0 --abs-floor=0.05 \
    >/dev/null; then
  echo "bench_diff failed to flag a synthetic 100x slowdown" >&2
  exit 1
fi
rm -rf build/bench-slow bench-fresh
echo "bench_diff gate passed"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== TSan: runtime + walk_tree + service + fuzz (both scheduler modes) =="
cmake -B build-tsan -S . -DGOTHIC_SANITIZE=thread \
      -DGOTHIC_BUILD_BENCH=OFF -DGOTHIC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j --target test_runtime test_walk_tree \
      test_service gothic_fuzz
(cd build-tsan &&
  GOTHIC_ASYNC=1 ./tests/test_runtime &&
  GOTHIC_ASYNC=1 ./tests/test_walk_tree &&
  GOTHIC_ASYNC=1 ./tests/test_service &&
  GOTHIC_ASYNC=0 ./tests/test_runtime &&
  GOTHIC_ASYNC=0 ./tests/test_walk_tree &&
  GOTHIC_ASYNC=0 ./tests/test_service &&
  GOTHIC_ASYNC=1 ./tools/gothic_fuzz --schedules=8 --faults=8 --steps=4 \
    --service=4 --n=128)

echo "check.sh: all stages passed"
