// gothic_serve — batch driver over the session pool (DESIGN.md, "Session
// layer & multi-tenancy"): sweeps a batch of scenario-registry sessions
// through one service::SessionManager and reports per-session outcomes.
//
//   --sessions=N      batch size (default: GOTHIC_SESSIONS, else 6).
//                     Session i cycles the scenario registry unless
//                     --scenario pins one.
//   --devices=N       pool devices / driver threads (default 1)
//   --workers=N       per-device workers (0 = GOTHIC_THREADS default)
//   --lanes=N         per-device stream lanes (0 = GOTHIC_ASYNC_LANES)
//   --steps=N         steps per session (default 8)
//   --n=N             particles per session (0 = scenario default)
//   --seed=S          base seed; session i runs under S + i (default 1)
//   --scenario=SPEC   pin every session to one registry name / config file
//   --shards=K        shard count per session (default 1 = unsharded)
//   --quota=BYTES     per-session arena quota, k/m suffixes accepted
//                     (default: GOTHIC_SESSION_QUOTA, else 0 = unlimited)
//   --trace-dir=D     per-session Perfetto trace at D/<name>.trace.json
//   --telemetry-dir=D per-session JSONL telemetry at D/<name>.jsonl
//   --snapshot-every=N --snapshot-dir=D
//                     checkpoint stream at D/<name>.bin every N steps
//   --oracle          re-run every completed session solo and require the
//                     pooled final state to match bit-for-bit
//   --metrics         print the metrics registry (service footer included)
//
// Exit code 0 iff every session completed (and, with --oracle, matched).
#include "service/session_manager.hpp"
#include "trace/metrics.hpp"
#include "util/args.hpp"
#include "util/env.hpp"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

namespace {

using gothic::service::SessionConfig;
using gothic::service::SessionInfo;
using gothic::service::SessionState;

int run(const gothic::Args& args) {
  const auto sessions = static_cast<int>(args.get_int(
      "sessions",
      static_cast<long long>(gothic::env_size("GOTHIC_SESSIONS", 6))));
  gothic::service::PoolOptions pool;
  pool.devices = static_cast<int>(args.get_int("devices", 1));
  pool.workers = static_cast<int>(args.get_int("workers", 0));
  pool.lanes = static_cast<int>(args.get_int("lanes", 0));
  const auto steps = static_cast<int>(args.get_int("steps", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 0));
  const auto base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string scenario_spec = args.get("scenario", "");
  const auto shards = static_cast<int>(args.get_int("shards", 1));
  const auto quota = args.has("quota")
                         ? gothic::parse_size(args.get("quota", "0"))
                         : gothic::env_size("GOTHIC_SESSION_QUOTA", 0);
  const std::string trace_dir = args.get("trace-dir", "");
  const std::string telemetry_dir = args.get("telemetry-dir", "");
  const auto snapshot_every =
      static_cast<int>(args.get_int("snapshot-every", 0));
  const std::string snapshot_dir = args.get("snapshot-dir", "");
  const bool oracle = args.get_flag("oracle");
  const bool metrics = args.get_flag("metrics");

  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "gothic_serve: unknown option --%s\n", key.c_str());
    return 2;
  }
  if (sessions <= 0) {
    std::fprintf(stderr, "gothic_serve: --sessions must be positive\n");
    return 2;
  }

  // A missing output directory would make every per-session stream fail to
  // open silently; create them up front instead.
  for (const std::string& dir : {trace_dir, telemetry_dir, snapshot_dir}) {
    if (!dir.empty()) std::filesystem::create_directories(dir);
  }

  // The batch: registry-cycled (or pinned) scenarios, consecutive seeds.
  const auto& registry = gothic::scenario::registry();
  std::vector<SessionConfig> batch;
  batch.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    SessionConfig sc;
    sc.name = "s" + std::to_string(i);
    sc.scenario =
        scenario_spec.empty()
            ? registry[static_cast<std::size_t>(i) % registry.size()]
            : gothic::scenario::scenario_from_spec(scenario_spec);
    sc.n = n;
    sc.seed = base_seed + static_cast<std::uint64_t>(i);
    sc.steps = steps;
    sc.shards = shards;
    sc.arena_quota_bytes = quota;
    if (!trace_dir.empty()) {
      sc.trace_path = trace_dir + "/" + sc.name + ".trace.json";
    }
    if (!telemetry_dir.empty()) {
      sc.telemetry_path = telemetry_dir + "/" + sc.name + ".jsonl";
    }
    if (snapshot_every > 0 && !snapshot_dir.empty()) {
      sc.snapshot_every = snapshot_every;
      sc.snapshot_path = snapshot_dir + "/" + sc.name + ".bin";
    }
    batch.push_back(sc);
  }

  std::printf("gothic_serve: %d sessions x %d steps on %d device(s)"
              " (workers=%d lanes=%d shards=%d quota=%zu B)\n",
              sessions, steps, pool.devices, pool.workers, pool.lanes,
              shards, quota);

  gothic::service::SessionManager mgr(pool);
  std::vector<std::uint64_t> ids;
  ids.reserve(batch.size());
  for (const SessionConfig& sc : batch) ids.push_back(mgr.submit(sc));
  mgr.wait_all();

  bool ok = true;
  std::printf("%-4s %-8s %-14s %-9s %7s %9s %10s %5s %5s %s\n", "id",
              "name", "scenario", "state", "steps", "busy_s", "charged_B",
              "picks", "dev", "error");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const SessionInfo info = mgr.info(ids[i]);
    std::printf("%-4llu %-8s %-14s %-9s %3d/%-3d %9.4f %10zu %5llu %5d %s\n",
                static_cast<unsigned long long>(info.id), info.name.c_str(),
                info.scenario.c_str(), session_state_name(info.state),
                info.steps_done, info.steps_target, info.busy_seconds,
                info.charged_bytes,
                static_cast<unsigned long long>(info.picks),
                info.last_device, info.error.c_str());
    if (info.state != SessionState::Completed) ok = false;
    if (oracle && info.state == SessionState::Completed &&
        mgr.final_state(ids[i]) !=
            gothic::service::solo_final_state(batch[i])) {
      std::printf("  ORACLE MISMATCH: %s diverged from its solo run\n",
                  info.name.c_str());
      ok = false;
    }
  }

  const gothic::service::ServiceStats st = mgr.stats();
  std::printf("gothic_serve: %llu completed, %llu failed; %llu steps, "
              "%.4f busy s, %llu decisions, wait_max %llu "
              "(bound_max %llu)\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.steps_total),
              st.busy_seconds_total,
              static_cast<unsigned long long>(st.decisions),
              static_cast<unsigned long long>(st.wait_max),
              static_cast<unsigned long long>(st.starvation_bound_max));
  if (oracle) {
    std::printf("gothic_serve: oracle %s\n",
                ok ? "OK (survivors bit-identical to solo runs)"
                   : "FAILED");
  }

  if (metrics) {
    gothic::trace::MetricsRegistry reg;
    mgr.observe(reg); // pool idle after wait_all()
    reg.print(std::cout);
  }
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(gothic::Args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gothic_serve: %s\n", e.what());
    return 2;
  }
}
