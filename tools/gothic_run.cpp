// gothic_run — the production driver: build or load initial conditions,
// evolve with the GOTHIC pipeline, checkpoint snapshots, and report
// per-kernel timings plus conservation diagnostics.
//
//   gothic_run --model=m31 --n=65536 --steps=256 --dacc=0.002
//              --snapshot-every=64 --out=run_
//   gothic_run --restart=run_00000192.snap --steps=64
//
// Options:
//   --model=m31|plummer|uniform   initial conditions (default m31)
//   --scenario=<name|file>        use a scenario-registry entry (or a
//                                 key=value config file) for both ICs and
//                                 force-law/accuracy defaults; individual
//                                 flags below still override. Mutually
//                                 exclusive with --model; unknown names
//                                 fail listing the registered ones.
//   --n=<int>                     particle count (default 32768, or the
//                                 scenario's default_n)
//   --seed=<int>                  RNG seed (default 1, or the scenario's
//                                 default_seed)
//   --steps=<int>                 block steps to advance (default 64)
//   --dacc=<float>                Eq. 2 accuracy parameter (default 2^-9)
//   --mac=acc|theta|gadget        MAC type (default acc)
//   --theta=<float>               opening angle for --mac=theta
//   --eps=<float>                 Plummer softening (default 0.0156)
//   --eta=<float>                 time-step accuracy (default 0.25)
//   --dt-max=<float>              level-0 block step (default 1/8)
//   --max-level=<int>             block hierarchy depth (default 6)
//   --mode=pascal|volta           simulated scheduling mode (default pascal)
//   --curve=morton|hilbert        space-filling curve (default morton)
//   --quadrupole                  evaluate quadrupole moments
//   --shared-steps                disable block time steps
//   --restart=<file>              resume from a snapshot
//   --snapshot-every=<int>        checkpoint cadence in steps (0 = off)
//   --out=<prefix>                snapshot file prefix (default gothic_)
//   --csv=<file>                  dump final state as CSV
//   --trace=<file>                write a Perfetto trace of the run's
//                                 launch DAG (default: $GOTHIC_TRACE)
//   --telemetry=<file>            stream one JSONL telemetry record per
//                                 step (default: $GOTHIC_TELEMETRY)
//   --flight-dump[=<file>]        enable the flight recorder (as if
//                                 GOTHIC_FLIGHT were set; default file
//                                 flight.json) and dump the launch/step
//                                 rings at the end of the run
//   --metrics                     print per-kernel latency histograms
//                                 (p50/p95/max) and arena gauges at exit
//   --shards=<int>                run the sharded pipeline over K per-shard
//                                 devices (default: $GOTHIC_SHARDS, else 1
//                                 = the single-device Simulation; results
//                                 are bit-identical for every K)
#include "galaxy/m31.hpp"
#include "galaxy/spherical_sampler.hpp"
#include "nbody/sharded_simulation.hpp"
#include "scenario/registry.hpp"
#include "nbody/simulation.hpp"
#include "nbody/snapshot.hpp"
#include "runtime/device.hpp"
#include "trace/session.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

#include <memory>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace {

using namespace gothic;

nbody::Particles make_initial(const Args& args,
                              const scenario::Scenario* sc) {
  const std::string restart = args.get("restart", "");
  if (!restart.empty()) {
    nbody::SnapshotHeader hdr;
    nbody::Particles p = nbody::read_snapshot(restart, &hdr);
    std::cout << "restarted from " << restart << " (N = " << hdr.n
              << ", t = " << hdr.time << ")\n";
    return p;
  }
  if (sc != nullptr) {
    const auto n = static_cast<std::size_t>(
        args.get_int("n", static_cast<long long>(sc->default_n)));
    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<long long>(sc->default_seed)));
    return sc->make(n, seed);
  }
  const auto n = static_cast<std::size_t>(args.get_int("n", 32768));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string model = args.get("model", "m31");
  if (model == "m31") return galaxy::build_m31(n, seed);
  if (model == "plummer") return galaxy::make_plummer(n, 1.0, 1.0, seed);
  if (model == "uniform") {
    return galaxy::make_uniform_sphere(n, 1.0, 1.0, seed);
  }
  throw std::invalid_argument("unknown --model '" + model + "'");
}

nbody::SimConfig make_config(const Args& args,
                             const scenario::Scenario* sc) {
  nbody::SimConfig cfg;
  if (sc != nullptr) {
    // Scenario defaults first; explicit flags below override them.
    sc->configure(cfg);
  } else {
    cfg.walk.eps = real(0.0156);
    cfg.dt_max = 1.0 / 8;
  }
  const std::string mac =
      args.get("mac", cfg.walk.mac.type == gravity::MacType::OpeningAngle
                          ? "theta"
                          : cfg.walk.mac.type == gravity::MacType::Gadget
                                ? "gadget"
                                : "acc");
  if (mac == "acc") {
    cfg.walk.mac.type = gravity::MacType::Acceleration;
  } else if (mac == "theta") {
    cfg.walk.mac.type = gravity::MacType::OpeningAngle;
  } else if (mac == "gadget") {
    cfg.walk.mac.type = gravity::MacType::Gadget;
  } else {
    throw std::invalid_argument("unknown --mac '" + mac + "'");
  }
  cfg.walk.mac.dacc = static_cast<real>(
      args.get_double("dacc", static_cast<double>(cfg.walk.mac.dacc)));
  cfg.walk.mac.theta = static_cast<real>(
      args.get_double("theta", static_cast<double>(cfg.walk.mac.theta)));
  cfg.walk.eps = static_cast<real>(
      args.get_double("eps", static_cast<double>(cfg.walk.eps)));
  cfg.walk.use_quadrupole =
      args.get_flag("quadrupole") || cfg.walk.use_quadrupole;
  cfg.calc.compute_quadrupole = cfg.walk.use_quadrupole;
  cfg.eta = args.get_double("eta", cfg.eta);
  cfg.dt_max = args.get_double("dt-max", cfg.dt_max);
  cfg.max_level = static_cast<int>(args.get_int("max-level", 6));
  cfg.block_time_steps = !args.get_flag("shared-steps");
  const std::string mode = args.get("mode", "pascal");
  if (mode == "pascal") {
    cfg.set_mode(simt::ExecMode::Pascal);
  } else if (mode == "volta") {
    cfg.set_mode(simt::ExecMode::Volta);
  } else {
    throw std::invalid_argument("unknown --mode '" + mode + "'");
  }
  const std::string curve = args.get("curve", "morton");
  if (curve == "hilbert") {
    cfg.build.curve = octree::SpaceFillingCurve::Hilbert;
  } else if (curve != "morton") {
    throw std::invalid_argument("unknown --curve '" + curve + "'");
  }
  return cfg;
}

std::string snapshot_name(const std::string& prefix, int step) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%08d.snap", step);
  return prefix + buf;
}

/// The drive loop, shared by the single-device Simulation and the sharded
/// pipeline (identical interfaces, bit-identical results). `trace_dev` is
/// the device whose arena gauges the metrics footer samples.
template <typename Sim>
int drive(Sim& sim, runtime::Device& trace_dev, const Args& args) {
  const int steps = static_cast<int>(args.get_int("steps", 64));
  const int snap_every = static_cast<int>(args.get_int("snapshot-every", 0));
  const std::string prefix = args.get("out", "gothic_");
  const std::string csv = args.get("csv", "");
  const std::string trace_path =
      args.get("trace", trace::Session::env_trace_path());
  const std::string telemetry_path =
      args.get("telemetry", trace::TelemetryWriter::env_telemetry_path());
  const bool metrics = args.get_flag("metrics");
  const bool flight_dump = args.has("flight-dump");
  for (const std::string& key : args.unused()) {
    std::cerr << "warning: unused option --" << key << "\n";
  }

  // Observability is opt-in: with no --trace/--telemetry/--metrics the
  // simulation runs with a null listener (no per-launch overhead).
  std::unique_ptr<trace::Session> session;
  if (metrics || !trace_path.empty() || !telemetry_path.empty()) {
    session = std::make_unique<trace::Session>(trace_path, telemetry_path);
    sim.set_instrumentation_listener(session.get());
  }

  sim.refresh_forces();
  const nbody::Energies e0 = sim.energies();
  std::cout << "N = " << sim.particles().size() << ", E0 = " << e0.total()
            << ", virial -2K/W = " << e0.virial_ratio() << "\n";

  for (int s = 1; s <= steps; ++s) {
    const nbody::StepReport r = sim.step();
    if (snap_every > 0 && s % snap_every == 0) {
      const std::string path = snapshot_name(prefix, sim.step_count());
      nbody::write_snapshot(path, sim.particles(), sim.time());
      std::cout << "step " << sim.step_count() << ": t = " << sim.time()
                << ", active = " << r.n_active << ", wrote " << path
                << "\n";
    }
  }

  sim.refresh_forces();
  const nbody::Energies e1 = sim.energies();
  std::cout << "advanced " << steps << " steps to t = " << sim.time()
            << "; |dE/E| = "
            << std::fabs((e1.total() - e0.total()) /
                         std::max(std::fabs(e0.total()), 1e-30))
            << "; rebuilds = " << sim.rebuild_count() << "\n";

  Table t("wall-clock per kernel", {"kernel", "seconds", "calls"});
  for (const Kernel k :
       {Kernel::WalkTree, Kernel::CalcNode, Kernel::MakeTree,
        Kernel::PredictCorrect}) {
    t.add_row({std::string(kernel_name(k)),
               Table::sci(sim.timers().seconds(k)),
               Table::num(static_cast<long long>(sim.timers().calls(k)))});
  }
  t.print(std::cout);

  if (!csv.empty()) {
    nbody::write_csv(csv, sim.particles());
    std::cout << "final state written to " << csv << "\n";
  }
  if (session) {
    sim.set_instrumentation_listener(nullptr);
    const bool ok = session->finish(trace_dev);
    if (metrics) session->metrics().print(std::cout);
    if (session->tracing()) {
      // Non-zero drops mean the bounded trace buffer truncated the
      // timeline — surfaced here so CI smoke can assert on it.
      std::cout << "trace dropped records: " << session->dropped() << "\n";
      if (ok) {
        std::cout << "perfetto trace written to " << session->trace_path()
                  << " (load at ui.perfetto.dev)\n";
      } else {
        std::cerr << "warning: could not write trace to "
                  << session->trace_path() << "\n";
      }
    }
    if (trace::TelemetryWriter* tel = session->telemetry();
        tel != nullptr && tel->ok()) {
      std::cout << "telemetry stream written to " << tel->path() << " ("
                << tel->lines() << " records)\n";
    }
  }
  if (trace::FlightRecorder* fr = sim.flight_recorder();
      fr != nullptr && flight_dump) {
    if (fr->dump("on demand (gothic_run --flight-dump)")) {
      std::cout << "flight-recorder dump written to "
                << fr->last_dump_path() << " (" << fr->seen_records()
                << " launches seen)\n";
    }
  }
  return 0;
}

int shard_count(const Args& args) {
  long long k = 1;
  if (const char* env = std::getenv("GOTHIC_SHARDS")) {
    k = std::atoll(env);
  }
  k = args.get_int("shards", k);
  if (k < 1) throw std::invalid_argument("--shards must be >= 1");
  return static_cast<int>(k);
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    // --flight-dump enables the recorder the same way GOTHIC_FLIGHT does
    // (the simulations read the variable at construction); an explicit
    // GOTHIC_FLIGHT destination wins over the flag's default file.
    if (args.has("flight-dump") &&
        std::getenv("GOTHIC_FLIGHT") == nullptr) {
      std::string dest = args.get("flight-dump", "");
      if (dest.empty()) dest = "flight.json";
      setenv("GOTHIC_FLIGHT", dest.c_str(), 1);
    }
    std::unique_ptr<scenario::Scenario> sc;
    if (args.has("scenario")) {
      if (args.has("model")) {
        throw std::invalid_argument(
            "--model and --scenario are mutually exclusive");
      }
      sc = std::make_unique<scenario::Scenario>(
          scenario::scenario_from_spec(args.get("scenario", "")));
      std::cout << "scenario " << sc->name << " ["
                << gravity::force_law_name(sc->law) << "]: " << sc->summary
                << "\n";
    }
    const int shards = shard_count(args);
    if (shards > 1) {
      nbody::ShardOptions opt;
      opt.shards = shards;
      nbody::ShardedSimulation sim(make_initial(args, sc.get()),
                                   make_config(args, sc.get()), opt);
      std::cout << "sharded pipeline: " << shards << " shards\n";
      return drive(sim, sim.shard_device(0), args);
    }
    nbody::Simulation sim(make_initial(args, sc.get()),
                          make_config(args, sc.get()));
    return drive(sim, runtime::Device::current(), args);
  } catch (const std::exception& e) {
    std::cerr << "gothic_run: " << e.what() << "\n";
    return 1;
  }
}
