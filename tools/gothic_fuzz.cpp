// gothic_fuzz — schedule fuzzer and fault-injection driver for the async
// launch engine (see DESIGN.md, "Testing & fault model").
//
// Three legs, each optional:
//   --schedules=N   seeded sweep: N random interleavings of the step DAG,
//                   each compared bit-for-bit against the synchronous
//                   reference. A failing run prints its 64-bit seed; that
//                   seed alone reproduces the exact interleaving.
//   --enumerate=N   depth-first enumeration of the schedule tree (up to N
//                   runs) — every run is a distinct interleaving.
//   --faults=N      N randomized fault plans (launch-body exceptions, lane
//                   stalls) through a cross-stream DAG, asserting the error
//                   contract: one first-wins error, device reusable after.
//   --shards=N      N seeded sharded runs (K in {1,2,4}, async mode and
//                   walk schedule from the seed, one schedule controller
//                   per shard device), each compared bit-for-bit against
//                   the unsharded synchronous reference.
//   --shard-faults=N  N launch-body throws injected into one shard of a
//                   sharded step (devices follow GOTHIC_ASYNC), asserting
//                   the isolation contract: the fault surfaces from step()
//                   and every shard device stays reusable.
//   --service=N     N seeded session-pool runs: each seed builds a
//                   SessionManager (pool shape, mixed scenario batch and
//                   fault family from the seed), injects launch throws /
//                   lane stalls / arena OOM, and asserts the session
//                   isolation contract — every survivor bit-identical to
//                   its solo run, every failure carried by one session.
//   --scenarios=N   N seeded scenario runs: each seed hashes to a
//                   scenario-registry entry (ICs + force law) and encodes
//                   walk schedule, async mode, shard count and SIMD
//                   substrate in its bits, compared bit-for-bit against
//                   that scenario's synchronous reference.
//
//   --replay=SEED   re-run one seeded schedule (accepts 0x... hex) and
//                   print its interleaving — the repro entry point.
//   --replay-scenario=SEED  re-run one scenario seed the same way.
//
// Workload knobs (--n, --steps, --workers, --lanes, --rebuild-interval)
// must match between a failing sweep and its replay. Exit code 0 iff every
// leg passed.
#include "service/fuzz.hpp"
#include "testkit/fuzz.hpp"
#include "util/args.hpp"

#include <cstdio>
#include <exception>
#include <string>

namespace {

using gothic::testkit::FuzzConfig;
using gothic::testkit::hex_seed;

void print_failures(const std::vector<std::string>& failures) {
  for (const std::string& f : failures) std::printf("  FAIL %s\n", f.c_str());
}

int run(const gothic::Args& args) {
  FuzzConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 192));
  cfg.steps = static_cast<int>(args.get_int("steps", 10));
  cfg.workers = static_cast<int>(args.get_int("workers", 2));
  cfg.lanes = static_cast<int>(args.get_int("lanes", 2));
  cfg.rebuild_interval =
      static_cast<int>(args.get_int("rebuild-interval", 1));
  const std::uint64_t base_seed =
      std::stoull(args.get("seed", "1"), nullptr, 0);
  const bool scenario_leg =
      args.has("scenarios") || args.has("replay-scenario");
  const auto schedules = static_cast<std::size_t>(args.get_int(
      "schedules", args.has("enumerate") || args.has("replay") || scenario_leg
                       ? 0
                       : 64));
  const auto enumerate =
      static_cast<std::size_t>(args.get_int("enumerate", 0));
  const auto faults = static_cast<std::size_t>(args.get_int(
      "faults", args.has("replay") || scenario_leg ? 0 : 8));
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 0));
  const auto shard_faults =
      static_cast<std::size_t>(args.get_int("shard-faults", 0));
  const auto service = static_cast<std::size_t>(args.get_int("service", 0));
  const auto scenarios =
      static_cast<std::size_t>(args.get_int("scenarios", 0));
  const bool replay = args.has("replay");
  const std::uint64_t replay_seed_value =
      replay ? std::stoull(args.get("replay", "0"), nullptr, 0) : 0;
  const bool replay_scenario = args.has("replay-scenario");
  const std::uint64_t replay_scenario_seed =
      replay_scenario ? std::stoull(args.get("replay-scenario", "0"), nullptr,
                                    0)
                      : 0;

  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "gothic_fuzz: unknown option --%s\n", key.c_str());
    return 2;
  }

  std::printf("gothic_fuzz: n=%zu steps=%d workers=%d lanes=%d rebuild=%d\n",
              cfg.n, cfg.steps, cfg.workers, cfg.lanes, cfg.rebuild_interval);
  bool ok = true;

  if (replay) {
    const auto ref = gothic::testkit::run_controlled(cfg, false, nullptr);
    const auto out = gothic::testkit::replay_seed(cfg, replay_seed_value, ref);
    std::printf("replay %s: %zu decision points, %s, %zu violations\n",
                hex_seed(replay_seed_value).c_str(), out.decision_points,
                out.bit_identical ? "bit-identical" : "STATE DIVERGED",
                out.violations.size());
    std::printf("  interleaving: %s\n", out.signature.c_str());
    print_failures(out.violations);
    ok = ok && out.bit_identical && out.violations.empty();
  }

  if (schedules > 0) {
    const auto rep = gothic::testkit::sweep_seeds(cfg, base_seed, schedules);
    std::printf(
        "schedules: %zu seeded runs from %s, %zu distinct interleavings, "
        "%zu decision points, %zu failures\n",
        rep.runs, hex_seed(base_seed).c_str(), rep.signatures.size(),
        rep.decision_points_total, rep.failures.size());
    print_failures(rep.failures);
    for (std::uint64_t s : rep.failing_seeds) {
      std::printf("  replay with: gothic_fuzz --replay=%s --n=%zu --steps=%d "
                  "--workers=%d --lanes=%d --rebuild-interval=%d\n",
                  hex_seed(s).c_str(), cfg.n, cfg.steps, cfg.workers,
                  cfg.lanes, cfg.rebuild_interval);
    }
    ok = ok && rep.ok();
  }

  if (enumerate > 0) {
    const auto rep = gothic::testkit::enumerate_schedules(cfg, enumerate);
    std::printf("enumerate: %zu runs, %zu distinct interleavings, "
                "%zu decision points, %zu failures\n",
                rep.runs, rep.signatures.size(), rep.decision_points_total,
                rep.failures.size());
    print_failures(rep.failures);
    ok = ok && rep.ok();
  }

  if (faults > 0) {
    const auto rep = gothic::testkit::sweep_faults(cfg, base_seed, faults);
    std::printf("faults: %zu plans (%zu with throws, %zu with stalls), "
                "%zu failures\n",
                rep.plans, rep.with_throws, rep.with_stalls,
                rep.failures.size());
    print_failures(rep.failures);
    ok = ok && rep.ok();
  }

  if (shards > 0) {
    const auto rep =
        gothic::testkit::sweep_shard_seeds(cfg, base_seed, shards);
    std::printf("shards: %zu seeded sharded runs from %s, %zu distinct "
                "interleavings, %zu decision points, %zu failures\n",
                rep.runs, hex_seed(base_seed).c_str(), rep.signatures.size(),
                rep.decision_points_total, rep.failures.size());
    print_failures(rep.failures);
    ok = ok && rep.ok();
  }

  if (replay_scenario) {
    const auto out =
        gothic::testkit::replay_scenario_seed(cfg, replay_scenario_seed);
    std::printf("replay-scenario %s: scenario %s, K=%d, %s, %zu decision "
                "points, %s, %zu violations\n",
                hex_seed(replay_scenario_seed).c_str(), out.scenario.c_str(),
                out.shards, out.async ? "async" : "sync",
                out.decision_points,
                out.bit_identical ? "bit-identical" : "STATE DIVERGED",
                out.violations.size());
    std::printf("  interleaving: %s\n", out.signature.c_str());
    print_failures(out.violations);
    ok = ok && out.bit_identical && out.violations.empty();
  }

  if (scenarios > 0) {
    const auto rep =
        gothic::testkit::sweep_scenario_seeds(cfg, base_seed, scenarios);
    std::printf("scenarios: %zu seeded runs from %s, %zu distinct "
                "scenario interleavings, %zu decision points, %zu failures\n",
                rep.runs, hex_seed(base_seed).c_str(), rep.signatures.size(),
                rep.decision_points_total, rep.failures.size());
    print_failures(rep.failures);
    for (std::uint64_t s : rep.failing_seeds) {
      std::printf("  replay with: gothic_fuzz --replay-scenario=%s --n=%zu "
                  "--steps=%d --workers=%d --lanes=%d "
                  "--rebuild-interval=%d\n",
                  hex_seed(s).c_str(), cfg.n, cfg.steps, cfg.workers,
                  cfg.lanes, cfg.rebuild_interval);
    }
    ok = ok && rep.ok();
  }

  if (shard_faults > 0) {
    const auto rep =
        gothic::testkit::sweep_shard_faults(cfg, base_seed, shard_faults);
    std::printf("shard-faults: %zu plans (%zu fired), %zu failures\n",
                rep.plans, rep.with_throws, rep.failures.size());
    print_failures(rep.failures);
    ok = ok && rep.ok();
  }

  if (service > 0) {
    gothic::service::ServiceFuzzConfig scfg;
    scfg.n = cfg.n;
    scfg.steps = cfg.steps;
    scfg.workers = cfg.workers;
    scfg.lanes = cfg.lanes;
    const auto rep =
        gothic::service::sweep_service_faults(scfg, base_seed, service);
    std::printf("service: %zu pooled runs from %s (%zu sessions faulted, "
                "%zu completed), %zu failures\n",
                rep.runs, hex_seed(base_seed).c_str(), rep.faulted_sessions,
                rep.completed_sessions, rep.failures.size());
    print_failures(rep.failures);
    ok = ok && rep.ok();
  }

  std::printf("gothic_fuzz: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(gothic::Args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gothic_fuzz: %s\n", e.what());
    return 2;
  }
}
