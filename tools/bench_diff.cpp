// bench_diff — the perf-regression gate over two BENCH_*.json trees.
//
//   bench_diff --baseline=bench-results --candidate=build/bench-fresh
//   bench_diff --baseline=... --candidate=... --threshold=0.5
//              --abs-floor=0.002 --json=diff.json
//   bench_diff --baseline=... --candidate=... --update-baseline
//
// Pairs reports by canonical name (repeat runs BENCH_x.runK.json are
// folded with per-metric MIN — wall-clock noise is additive), gates the
// timing metrics with a relative threshold plus an absolute noise floor,
// and compares deterministic op counts informationally. See
// bench/support/baseline.hpp for the exact rules.
//
// Exit status: 0 = no regressions, 1 = regressions above threshold,
// 2 = usage or schema error. --update-baseline archives the candidate
// reports into the baseline directory (after gating; pass
// --force-update to archive even over regressions).
#include "support/baseline.hpp"
#include "util/args.hpp"

#include <fstream>
#include <iostream>
#include <stdexcept>

int main(int argc, char** argv) {
  using namespace gothic;
  try {
    const Args args(argc, argv);
    const std::string baseline_dir = args.get("baseline", "");
    const std::string candidate_dir = args.get("candidate", "");
    bench::DiffOptions opt;
    opt.threshold = args.get_double("threshold", opt.threshold);
    opt.abs_floor = args.get_double("abs-floor", opt.abs_floor);
    const bool update = args.get_flag("update-baseline");
    const bool force_update = args.get_flag("force-update");
    const std::string json_path = args.get("json", "");
    for (const std::string& key : args.unused()) {
      std::cerr << "bench_diff: warning: unused option --" << key << "\n";
    }
    if (baseline_dir.empty() || candidate_dir.empty()) {
      std::cerr << "usage: bench_diff --baseline=DIR --candidate=DIR\n"
                   "  [--threshold=REL] [--abs-floor=SECONDS]\n"
                   "  [--json=FILE] [--update-baseline] [--force-update]\n";
      return 2;
    }
    if (opt.threshold < 0.0 || opt.abs_floor < 0.0) {
      std::cerr << "bench_diff: --threshold/--abs-floor must be >= 0\n";
      return 2;
    }

    const bench::BaselineStore baseline(baseline_dir);
    const bench::BaselineStore candidate(candidate_dir);
    if (candidate.entries().empty()) {
      std::cerr << "bench_diff: no BENCH_*.json reports under "
                << candidate_dir << "\n";
      return 2;
    }

    const bench::DiffReport rep =
        bench::diff_baselines(baseline, candidate, opt);
    rep.print(std::cout, opt);
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (os) os << rep.json(opt);
      if (!os) {
        std::cerr << "bench_diff: error: could not write " << json_path
                  << "\n";
        return 2;
      }
    }
    if (!rep.errors.empty()) return 2;

    if (update && (rep.regressions.empty() || force_update)) {
      const std::size_t copied = bench::update_baseline(baseline, candidate);
      std::cout << "bench_diff: archived " << copied << " report(s) into "
                << baseline_dir << "\n";
    } else if (update) {
      std::cerr << "bench_diff: refusing --update-baseline over "
                << rep.regressions.size()
                << " regression(s); pass --force-update to override\n";
    }
    return rep.regressions.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
