// Figure 5 — speed-up of the Pascal mode over the Volta mode for each
// representative function, as a function of dacc.
//
// Paper: walkTree ~15% faster, calcNode ~23% faster (both call
// __syncwarp-class barriers in their reductions/scans); makeTree shows a
// smaller gain (tiled Cooperative-Groups sync + block-scope radix sort);
// predict/correct shows none (no warp synchronisation at all).
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();

  std::cout << "# M31 model, N = " << scale.n << "\n";
  BenchReport rep("fig05_mode_speedup");
  rep.set_scale(scale);
  Table t("Fig 5 - Pascal-mode speed-up per function (V100)",
          {"dacc", "walkTree", "calcNode", "makeTree", "pred/corr"});
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const GpuStepTime pas = predict_step_time(p, v100, false);
    const GpuStepTime vol = predict_step_time(p, v100, true);
    t.add_row({dacc_label(dacc), Table::fix(vol.walk / pas.walk, 3),
               Table::fix(vol.calc / pas.calc, 3),
               Table::fix(vol.make / pas.make, 3),
               Table::fix(vol.pred / pas.pred, 3)});
  }
  t.print(std::cout);
  std::cout << "paper: walkTree ~1.15, calcNode ~1.23, makeTree smaller, "
               "pred/corr 1.00 (identical operations in both modes).\n";
  rep.add_table(t);
  rep.add_note("paper: walkTree ~1.15, calcNode ~1.23, makeTree smaller, "
               "pred/corr 1.00");
  rep.write(std::cout);
  return 0;
}
