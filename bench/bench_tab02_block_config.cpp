// Table 2 — optimal thread-block configuration (Ttot threads per block,
// Tsub threads per sub-warp reduction) for each GOTHIC kernel on V100 and
// P100.
//
// calcNode is genuinely re-executed at every Tsub (the reduction-stage
// counts change); the Ttot dependence of every kernel comes from the
// occupancy model plus the block-shape penalty; walkTree/makeTree/correct
// carry an analytic Tsub penalty for lane under-utilisation documented in
// EXPERIMENTS.md. Paper optima:
//   walkTree 512/32, calcNode 128/32 (V100) 256/16 (P100),
//   makeTree 512/8, predict 512/-, correct 512/32.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <iostream>
#include <map>

namespace {

using namespace gothic;
using namespace gothic::bench;
using perfmodel::ConfigPoint;
using perfmodel::GothicKernel;

/// Lane-utilisation penalty of running a kernel's warp phase at width
/// tsub when its natural operand width is `natural` (walkTree compacts
/// whole warps; makeTree links 8 children per node; correct reduces
/// warp-wide).
double tsub_penalty(int tsub, int natural) {
  if (tsub == natural) return 1.0;
  const double ratio = tsub > natural
                           ? static_cast<double>(tsub) / natural
                           : static_cast<double>(natural) / tsub;
  return 1.0 + 0.04 * (ratio - 1.0);
}

double modelled_time(const perfmodel::GpuSpec& gpu, GothicKernel k, int ttot,
                     const simt::OpCounts& ops) {
  perfmodel::KernelLaunchInfo info;
  info.resources = perfmodel::kernel_resources(k, ttot);
  return perfmodel::predict_kernel_time(gpu, ops, info).total_s *
         perfmodel::block_shape_penalty(gpu, ttot);
}

struct Row {
  const char* function;
  ConfigPoint v100;
  ConfigPoint p100;
  const char* paper_v100;
  const char* paper_p100;
};

} // namespace

int main() {
  const BenchScale scale = BenchScale::from_env();
  auto particles = m31_workload(scale.n);

  // Tree + per-Tsub calcNode counts (measured, not modelled).
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(particles.x, particles.y, particles.z, tree, perm,
                     octree::BuildConfig{});
  particles.apply_permutation(perm);
  std::map<int, simt::OpCounts> calc_counts;
  for (const int tsub : perfmodel::tsub_candidates()) {
    octree::CalcNodeConfig cc;
    cc.tsub = tsub;
    simt::OpCounts ops;
    octree::calc_node(tree, particles.x, particles.y, particles.z,
                      particles.m, cc, &ops);
    calc_counts[tsub] = ops;
  }

  // Fixed-width kernels: one measured profile at the fiducial accuracy.
  const StepProfile prof = profile_step(particles, 1.0 / 512.0, scale.steps);

  auto sweep_kernel = [&](const perfmodel::GpuSpec& gpu, GothicKernel k,
                          const simt::OpCounts& base, int natural_tsub) {
    std::vector<ConfigPoint> sweep;
    for (const int ttot : perfmodel::ttot_candidates()) {
      for (const int tsub : perfmodel::tsub_candidates()) {
        simt::OpCounts ops =
            (k == GothicKernel::CalcNode) ? calc_counts[tsub] : base;
        double t = modelled_time(gpu, k, ttot, pascal_view(ops));
        if (k == GothicKernel::CalcNode) {
          // Narrow tiles serialise a 16-body leaf into more dependent
          // chunks (latency the count-based model cannot see).
          const int chunks = (16 + tsub - 1) / tsub;
          t *= 1.0 + 0.02 * (chunks - 1);
        } else {
          t *= tsub_penalty(tsub, natural_tsub);
        }
        sweep.push_back({ttot, tsub, t});
      }
    }
    return perfmodel::best_config(sweep);
  };

  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();
  const std::vector<Row> rows = {
      {"walkTree", sweep_kernel(v100, GothicKernel::WalkTree, prof.walk, 32),
       sweep_kernel(p100, GothicKernel::WalkTree, prof.walk, 32), "512/32",
       "512/32"},
      {"calcNode", sweep_kernel(v100, GothicKernel::CalcNode, {}, 32),
       sweep_kernel(p100, GothicKernel::CalcNode, {}, 32), "128/32",
       "256/16"},
      {"makeTree", sweep_kernel(v100, GothicKernel::MakeTree, prof.make_raw, 8),
       sweep_kernel(p100, GothicKernel::MakeTree, prof.make_raw, 8), "512/8",
       "512/8"},
      {"predict", sweep_kernel(v100, GothicKernel::Predict, prof.pred, 32),
       sweep_kernel(p100, GothicKernel::Predict, prof.pred, 32), "512/-",
       "512/-"},
      {"correct", sweep_kernel(v100, GothicKernel::Correct, prof.pred, 32),
       sweep_kernel(p100, GothicKernel::Correct, prof.pred, 32), "512/32",
       "512/32"},
  };

  std::cout << "# M31 model, N = " << scale.n << "\n";
  Table t("Table 2 - tuned thread-block configuration (model / paper)",
          {"function", "V100 Ttot/Tsub", "paper", "P100 Ttot/Tsub",
           "paper "});
  for (const Row& r : rows) {
    t.add_row({r.function,
               Table::num(r.v100.ttot) + "/" + Table::num(r.v100.tsub),
               r.paper_v100,
               Table::num(r.p100.ttot) + "/" + Table::num(r.p100.tsub),
               r.paper_p100});
  }
  t.print(std::cout);
  std::cout << "note: predict has no sub-warp phase; its Tsub column is "
               "degenerate by construction.\n";
  BenchReport rep("tab02_block_config");
  rep.set_scale(scale);
  rep.add_profile("dacc=2^-9", prof);
  rep.add_table(t);
  rep.add_note("note: predict has no sub-warp phase; its Tsub column is "
               "degenerate by construction");
  rep.write(std::cout);
  return 0;
}
