// Ablation — space-filling curve: Morton vs Peano-Hilbert ordering.
//
// GOTHIC sorts along the Peano-Hilbert curve; the Morton curve is cheaper
// to compute but jumps across space at octant boundaries, loosening the
// contiguous runs the warp groups are carved from. This ablation measures
// what the choice buys: group count/size, traversal statistics, and the
// modelled V100 walkTree time at fixed accuracy.
#include "support/experiment.hpp"

#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <cmath>
#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;
  using octree::SpaceFillingCurve;

  const BenchScale scale = BenchScale::from_env();
  const auto base = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();

  Table t("ablation: space-filling curve (M31, N = " +
              std::to_string(scale.n) + ", dacc = 2^-9)",
          {"curve", "groups", "mean size", "MAC evals", "interactions",
           "V100 walk [s]"});
  for (const SpaceFillingCurve curve :
       {SpaceFillingCurve::Morton, SpaceFillingCurve::Hilbert}) {
    auto p = base;
    octree::Octree tree;
    std::vector<index_t> perm;
    octree::BuildConfig bc;
    bc.curve = curve;
    octree::build_tree(p.x, p.y, p.z, tree, perm, bc);
    p.apply_permutation(perm);
    octree::calc_node(tree, p.x, p.y, p.z, p.m);

    const auto groups = gravity::walk_groups(tree, p.x, p.y, p.z);

    // Bootstrap aold, then the acceleration-MAC walk under measurement.
    const std::size_t n = p.size();
    std::vector<real> ax(n), ay(n), az(n);
    gravity::WalkConfig boot;
    boot.eps = real(0.0156);
    boot.mac.type = gravity::MacType::OpeningAngle;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, {}, boot, ax, ay, az);
    std::vector<real> amag(n);
    for (std::size_t i = 0; i < n; ++i) {
      amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
    }
    gravity::WalkConfig cfg;
    cfg.eps = real(0.0156);
    cfg.mac.dacc = real(1.0 / 512);
    simt::OpCounts ops;
    gravity::WalkStats stats;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, ax, ay, az, {},
                       &ops, &stats);

    perfmodel::KernelLaunchInfo info;
    info.resources =
        perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);
    const double tw = perfmodel::predict_kernel_time(v100, ops, info).total_s;
    t.add_row({curve == SpaceFillingCurve::Morton ? "Morton" : "Hilbert",
               Table::num(static_cast<long long>(groups.size())),
               Table::fix(static_cast<double>(n) / groups.size(), 1),
               Table::sci(static_cast<double>(stats.mac_evals)),
               Table::sci(static_cast<double>(stats.interactions)),
               Table::sci(tw)});
  }
  t.print(std::cout);
  std::cout << "expected: Hilbert ordering yields fewer/larger groups and "
               "less traversal work for the same accuracy.\n";
  return 0;
}
