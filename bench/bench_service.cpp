// Session-pool throughput — the serving shape of the ROADMAP: many small
// scenario sessions multiplexed onto a shared device pool (DESIGN.md,
// "Session layer & multi-tenancy").
//
// Sweeps pool size x session count over registry-cycled sessions and
// reports aggregate throughput (sessions/s, steps/s), pool busy seconds
// and the scheduler's fairness counters. Every completed session is
// compared bit-for-bit against a solo run of the same scenario+seed — the
// session contract says pooling changes only *when* quanta run, never
// what they compute.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "service/session_manager.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

int main() {
  using namespace gothic;
  using namespace gothic::bench;
  using namespace gothic::service;

  const BenchScale scale = BenchScale::from_env();
  // Serving is many *small* sessions: size each tenant well below the
  // figure benches' single-simulation N so the sweep stays laptop-scale.
  const std::size_t n = std::max<std::size_t>(192, scale.n / 64);
  const int steps = std::max(2, scale.steps);
  const int kMaxSessions = 8;

  std::cout << "# session pool: n/session = " << n << ", steps/session = "
            << steps << ", workers/device = " << scale.threads
            << " (override with GOTHIC_BENCH_N / GOTHIC_BENCH_STEPS / "
               "GOTHIC_THREADS)\n";

  // One batch shape shared by every cell: registry-cycled scenarios with
  // consecutive seeds. Cells with fewer sessions use a prefix, so the
  // solo references can be computed once.
  const auto& registry = scenario::registry();
  std::vector<SessionConfig> batch;
  std::vector<std::vector<real>> reference;
  for (int i = 0; i < kMaxSessions; ++i) {
    SessionConfig sc;
    sc.name = "s" + std::to_string(i);
    sc.scenario = registry[static_cast<std::size_t>(i) % registry.size()];
    sc.n = n;
    sc.seed = 1 + static_cast<std::uint64_t>(i);
    sc.steps = steps;
    sc.rebuild_interval = 4;
    batch.push_back(sc);
    reference.push_back(solo_final_state(sc));
  }

  BenchReport rep("service");
  rep.set_scale(scale);
  Table t("Session-pool throughput (registry-cycled sessions, n = " +
              std::to_string(n) + "/session, " + std::to_string(steps) +
              " steps/session)",
          {"devices", "sessions", "elapsed [s]", "sessions/s", "steps/s",
           "busy [s]", "wait_max", "bound_max", "identical"});

  bool all_ok = true;
  for (const int devices : {1, 2}) {
    for (const int sessions : {2, kMaxSessions}) {
      PoolOptions pool;
      pool.devices = devices;
      pool.workers = scale.threads;
      SessionManager mgr(pool);

      std::vector<std::uint64_t> ids;
      const Stopwatch clock;
      for (int i = 0; i < sessions; ++i) {
        ids.push_back(mgr.submit(batch[static_cast<std::size_t>(i)]));
      }
      mgr.wait_all();
      const double elapsed = clock.seconds();

      bool identical = true;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const SessionInfo info = mgr.info(ids[i]);
        if (info.state != SessionState::Completed ||
            mgr.final_state(ids[i]) != reference[i]) {
          identical = false;
        }
      }
      all_ok = all_ok && identical;

      const ServiceStats st = mgr.stats();
      t.add_row({std::to_string(devices), std::to_string(sessions),
                 Table::sci(elapsed), Table::fix(sessions / elapsed, 2),
                 Table::fix(static_cast<double>(st.steps_total) / elapsed, 2),
                 Table::sci(st.busy_seconds_total),
                 std::to_string(st.wait_max),
                 std::to_string(st.starvation_bound_max),
                 identical ? "yes" : "NO"});
    }
  }

  t.print(std::cout);
  std::cout << "sessions/s and steps/s = completed work over the submit-to-"
               "drain wall time of one batch.\n"
            << "wait_max = worst runnable-but-passed-over streak; the "
               "scheduler guarantees wait_max <= bound_max + sessions.\n";
  std::cout << "bitwise identity vs solo runs: " << (all_ok ? "PASS" : "FAIL")
            << "\n";

  rep.add_table(t);
  rep.add_note(std::string("bitwise identity vs solo per-session runs: ") +
               (all_ok ? "PASS" : "FAIL"));
  rep.add_note("sessions cycle the scenario registry with consecutive "
               "seeds; fixed rebuild interval 4 pins the oracle");
  rep.write(std::cout);
  return all_ok ? 0 : 1;
}
