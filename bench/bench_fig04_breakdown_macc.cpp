// Figure 4 — per-function breakdown of the elapsed time per step as a
// function of dacc on Tesla V100 (Pascal mode).
//
// Paper shape: walkTree falls steeply as accuracy is relaxed; calcNode and
// pred/corr are independent of dacc; makeTree (amortised over the
// auto-tuned rebuild interval) follows the interval, which stretches from
// ~6 steps at the highest accuracy to ~30 at the lowest (§4.1).
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "runtime/device.hpp"
#include "trace/session.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();

  std::cout << "# M31 model, N = " << scale.n << ", runtime workers = "
            << scale.threads << " (override with GOTHIC_THREADS)\n";
  BenchReport rep("fig04_breakdown_macc");
  rep.set_scale(scale);
  // Observe every profiled launch: per-kernel latency histograms for the
  // report, plus a Perfetto trace when GOTHIC_TRACE is set.
  trace::Session session;
  Table t("Fig 4 - breakdown of elapsed time per step [s] (V100 compute_60)",
          {"dacc", "total", "walkTree", "calcNode", "makeTree", "pred/corr",
           "rebuild-interval"});
  Table ov("Achieved stream overlap per step [s] (this machine, "
           "GOTHIC_ASYNC scheduler)",
           {"dacc", "kernel-sum", "step-wall", "overlap"});
  double calc_min = 1e30, calc_max = 0;
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps, 128, &session);
    rep.add_profile(dacc_label(dacc), p);
    const GpuStepTime gt = predict_step_time(p, v100, false);
    t.add_row({dacc_label(dacc), Table::sci(gt.total()), Table::sci(gt.walk),
               Table::sci(gt.calc), Table::sci(gt.make), Table::sci(gt.pred),
               Table::fix(p.rebuild_interval, 0)});
    ov.add_row({dacc_label(dacc), Table::sci(p.measured_kernel_seconds),
                Table::sci(p.measured_wall_seconds),
                Table::sci(p.measured_overlap_seconds())});
    calc_min = std::min(calc_min, gt.calc);
    calc_max = std::max(calc_max, gt.calc);
  }
  t.print(std::cout);
  ov.print(std::cout);
  std::cout << "overlap = sum of kernel seconds - step wall span: the gap "
               "concurrent streams hide (GOTHIC_ASYNC=0 serialises it "
               "away).\n";
  std::cout << "calcNode spread across the sweep: "
            << Table::fix(calc_max / calc_min, 2)
            << "x (paper: flat; walkTree and the rebuild interval carry all "
               "the dacc dependence).\n";
  session.finish(runtime::Device::current());
  if (session.tracing()) {
    std::cout << "perfetto trace: " << session.trace_path() << "\n";
  }
  rep.add_table(t);
  rep.add_table(ov);
  rep.add_metrics(session.metrics());
  rep.add_note("paper: walkTree falls steeply with dacc; calcNode and "
               "pred/corr flat; makeTree follows the rebuild interval");
  rep.write(std::cout);
  return 0;
}
