// Figure 9 — sustained single-precision performance of the gravity
// kernel (walkTree) vs dacc, with rsqrt counted as 4 Flop (§4.2).
//
// Paper: ~7 TFlop/s (45% of the 15.7 TFlop/s peak) at dacc <~ 1e-3,
// decreasing as the accuracy is relaxed.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();
  const double peak = v100.fp32_peak_tflops();

  std::cout << "# M31 model, N = " << scale.n << "\n";
  BenchReport rep("fig09_walktree_flops");
  rep.set_scale(scale);
  Table t("Fig 9 - sustained walkTree performance (V100 compute_60)",
          {"dacc", "TFlop/s", "% of peak"});
  double best = 0.0, worst = 1e30;
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const double tw = predict_step_time(p, v100, false).walk;
    const double tf = perfmodel::sustained_tflops(p.walk, tw);
    best = std::max(best, tf);
    worst = std::min(worst, tf);
    t.add_row({dacc_label(dacc), Table::fix(tf, 2),
               Table::fix(100.0 * tf / peak, 1)});
  }
  t.print(std::cout);
  std::cout << "paper: up to ~45% of peak at high accuracy, decreasing with "
               "dacc; this run spans "
            << Table::fix(100.0 * worst / peak, 1) << "%-"
            << Table::fix(100.0 * best / peak, 1) << "%.\n";
  rep.add_table(t);
  rep.add_note("paper: up to ~45% of peak at high accuracy, decreasing "
               "with dacc");

  // Measured host-side substrate comparison: the same walk under
  // GOTHIC_SIMD=0 and =1, forces and op counts bit-checked. The predicted
  // TFlop/s above are substrate-independent (identical counts); this
  // table records what the AVX2 lanes buy the host emulation.
  const SimdWalkSpeedup sp = measure_simd_walk_speedup(init, scale.steps);
  Table st("walkTree substrate speedup (measured host seconds)",
           {"substrate", "walk seconds", "speedup", "ops identical",
            "forces identical"});
  st.add_row({"scalar", Table::sci(sp.scalar_seconds), "1.00", "-", "-"});
  st.add_row({"avx2", Table::sci(sp.simd_seconds),
              sp.simd_available ? Table::fix(sp.speedup(), 2) : "n/a",
              sp.ops_identical ? "yes" : "NO",
              sp.forces_identical ? "yes" : "NO"});
  st.print(std::cout);
  rep.add_table(st);
  rep.add_note(sp.simd_available
                   ? "simd speedup " + Table::fix(sp.speedup(), 2) +
                         "x measured on the host walk"
                   : "AVX2 unavailable; scalar substrate on both rows");

  rep.write(std::cout);
  return 0;
}
