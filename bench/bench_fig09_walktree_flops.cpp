// Figure 9 — sustained single-precision performance of the gravity
// kernel (walkTree) vs dacc, with rsqrt counted as 4 Flop (§4.2).
//
// Paper: ~7 TFlop/s (45% of the 15.7 TFlop/s peak) at dacc <~ 1e-3,
// decreasing as the accuracy is relaxed.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();
  const double peak = v100.fp32_peak_tflops();

  std::cout << "# M31 model, N = " << scale.n << "\n";
  BenchReport rep("fig09_walktree_flops");
  rep.set_scale(scale);
  Table t("Fig 9 - sustained walkTree performance (V100 compute_60)",
          {"dacc", "TFlop/s", "% of peak"});
  double best = 0.0, worst = 1e30;
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const double tw = predict_step_time(p, v100, false).walk;
    const double tf = perfmodel::sustained_tflops(p.walk, tw);
    best = std::max(best, tf);
    worst = std::min(worst, tf);
    t.add_row({dacc_label(dacc), Table::fix(tf, 2),
               Table::fix(100.0 * tf / peak, 1)});
  }
  t.print(std::cout);
  std::cout << "paper: up to ~45% of peak at high accuracy, decreasing with "
               "dacc; this run spans "
            << Table::fix(100.0 * worst / peak, 1) << "%-"
            << Table::fix(100.0 * best / peak, 1) << "%.\n";
  rep.add_table(t);
  rep.add_note("paper: up to ~45% of peak at high accuracy, decreasing "
               "with dacc");
  rep.write(std::cout);
  return 0;
}
