// Sharded pipeline — K-shard SFC domain decomposition with local
// essential trees (DESIGN.md, "Sharding & local essential trees").
//
// Runs the M31 workload through ShardedSimulation for K in {1, 2, 4} on
// a fixed rebuild cadence and reports per-shard busy time, the
// cross-shard imbalance ratio (busiest shard / mean shard), and the LET
// traffic (exported cells and spilled bodies per step). Every K is
// compared bit-for-bit against the single-device Simulation reference —
// the sharding contract says only *where* kernels run changes, never
// what they compute.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "nbody/sharded_simulation.hpp"
#include "nbody/simulation.hpp"
#include "util/timer.hpp"

#include <cstring>
#include <iostream>
#include <string>

namespace {

using namespace gothic;

/// Fixed rebuild cadence: bit-identity across runs requires the same
/// rebuild steps regardless of measured kernel times.
nbody::SimConfig shard_config() {
  nbody::SimConfig cfg;
  cfg.walk.eps = real(0.0156);
  cfg.walk.mac.dacc = real(1.0 / 512);
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 4;
  return cfg;
}

bool states_identical(const nbody::Particles& a, const nbody::Particles& b) {
  const std::size_t n = a.size();
  auto eq = [n](const std::vector<real>& u, const std::vector<real>& v) {
    return std::memcmp(u.data(), v.data(), n * sizeof(real)) == 0;
  };
  return eq(a.x, b.x) && eq(a.y, b.y) && eq(a.z, b.z) && eq(a.vx, b.vx) &&
         eq(a.vy, b.vy) && eq(a.vz, b.vz) && eq(a.ax, b.ax) &&
         eq(a.ay, b.ay) && eq(a.az, b.az) && eq(a.pot, b.pot);
}

} // namespace

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  // The oracle needs rebuilds in the measured window: >= 8 steps spans
  // two rebuilds at the fixed interval of 4.
  const int steps = std::max(8, scale.steps);

  std::cout << "# sharded pipeline: N = " << scale.n << ", steps = " << steps
            << ", workers/shard = " << scale.threads
            << " (override with GOTHIC_THREADS)\n";

  nbody::Simulation ref(m31_workload(scale.n), shard_config());
  {
    const Stopwatch clock;
    ref.run(steps);
    std::cout << "# reference (unsharded): " << Table::sci(clock.seconds())
              << " s\n";
  }

  BenchReport rep("shard");
  rep.set_scale(scale);
  Table t("SFC sharding with local essential trees (M31, N = " +
              std::to_string(scale.n) + ", " + std::to_string(steps) +
              " steps, fixed rebuild interval 4)",
          {"shards", "elapsed [s]", "busy max [s]", "busy mean [s]",
           "imbalance", "LET cells/step", "LET bodies/step", "identical"});

  bool all_identical = true;
  for (const int shards : {1, 2, 4}) {
    nbody::ShardOptions opt;
    opt.shards = shards;
    nbody::ShardedSimulation sim(m31_workload(scale.n), shard_config(), opt);

    double busy_max = 0.0, busy_mean = 0.0, imb_sum = 0.0;
    std::uint64_t let_cells = 0, let_bodies = 0;
    const Stopwatch clock;
    for (int i = 0; i < steps; ++i) {
      (void)sim.step();
      const nbody::ShardStepStats& st = sim.last_shard_stats();
      busy_max += st.busy_max;
      busy_mean += st.busy_mean;
      imb_sum += st.imbalance();
      let_cells += st.let_cells_total;
      let_bodies += st.let_bodies_total;
    }
    const double elapsed = clock.seconds();

    const bool identical = states_identical(sim.particles(), ref.particles());
    all_identical = all_identical && identical;
    t.add_row({std::to_string(shards), Table::sci(elapsed),
               Table::sci(busy_max / steps), Table::sci(busy_mean / steps),
               Table::fix(imb_sum / steps, 3),
               std::to_string(let_cells / static_cast<std::uint64_t>(steps)),
               std::to_string(let_bodies / static_cast<std::uint64_t>(steps)),
               identical ? "yes" : "NO"});
  }

  t.print(std::cout);
  std::cout << "imbalance = busiest shard busy seconds / mean shard busy "
               "seconds (1 = perfect balance).\n"
            << "LET cells/bodies = tree cells exported and leaf bodies "
               "spilled across all shard pairs per step.\n";
  std::cout << "bitwise identity vs the unsharded reference: "
            << (all_identical ? "PASS" : "FAIL") << "\n";

  rep.add_table(t);
  rep.add_note(std::string("bitwise identity vs unsharded reference: ") +
               (all_identical ? "PASS" : "FAIL"));
  rep.add_note("fixed rebuild cadence (interval 4) so every K replays the "
               "same rebuild steps");
  rep.write(std::cout);
  return all_identical ? 0 : 1;
}
