// Figure 6 — number of instructions per step executed in walkTree, by
// nvprof metric category (inst_integer, flop_count_sp_{fma,mul,add,
// special}), as a function of dacc.
//
// Paper shape: all categories fall as dacc grows; FMA stays highest,
// special (rsqrt) lowest (~10x below FMA); the integer count falls more
// slowly than the FP32 counts, converging toward them at dacc ~ 2^-1.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);

  std::cout << "# walkTree instruction counts per step, M31, N = " << scale.n
            << " (paper: N = 2^23, nvprof)\n";
  BenchReport rep("fig06_instruction_counts");
  rep.set_scale(scale);
  Table t("Fig 6 - instructions per step in walkTree",
          {"dacc", "integer", "FP32 FMA", "FP32 mul", "FP32 add", "FP32 sp",
           "int/FP32"});
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const auto& w = p.walk;
    const double ratio =
        static_cast<double>(w.int_ops) /
        static_cast<double>(std::max<std::uint64_t>(
            w.fp32_core_instructions(), 1));
    t.add_row({dacc_label(dacc), Table::sci(static_cast<double>(w.int_ops)),
               Table::sci(static_cast<double>(w.fp32_fma)),
               Table::sci(static_cast<double>(w.fp32_mul)),
               Table::sci(static_cast<double>(w.fp32_add)),
               Table::sci(static_cast<double>(w.fp32_special)),
               Table::fix(ratio, 3)});
  }
  t.print(std::cout);
  std::cout << "expected shape: FMA > mul/add > special (~10x below FMA); "
               "integer share rises as dacc grows.\n";
  rep.add_table(t);
  rep.add_note("expected shape: FMA > mul/add > special; integer share "
               "rises as dacc grows");
  rep.write(std::cout);
  return 0;
}
