// Appendix A — grid-wide synchronisation: GPU lock-free barrier (Xiao &
// Feng 2010, what GOTHIC uses) vs a Cooperative-Groups-style centralised
// barrier. The paper measures the calcNode-class kernel at 4.0e-3 s
// (lock-free), 4.9e-3 s (Cooperative Groups) and 4.4e-3 s (CG-compiled but
// lock-free), attributing ~2.3e-5 s to each of the 21 grid syncs per step,
// and notes the CG compilation path costs registers (56 -> 64 per thread,
// 9 -> 8 blocks/SM).
//
// We re-run the algorithmic comparison with std::thread workers, each
// driving several "blocks" through the split arrive()/wait() interface so
// block counts beyond the core count are measured without oversubscribed
// spinning: the centralised barrier read-modify-writes one hot counter per
// arrival while the lock-free barrier touches per-block cache lines only.
#include "perfmodel/occupancy.hpp"
#include "simt/barrier.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

namespace {

using namespace gothic;
using namespace gothic::simt;

/// ns per barrier episode with `blocks` participants multiplexed over
/// `threads` workers. Thread t owns blocks {t, t+threads, ...}; it arrives
/// all of them, then waits on all of them (block 0 first, since block 0's
/// wait performs the lock-free release).
double measure(InterBlockBarrier& bar, int blocks, int threads, int rounds) {
  std::vector<std::thread> ts;
  ts.reserve(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&bar, t, blocks, threads, rounds] {
      for (int r = 0; r < rounds; ++r) {
        for (int b = t; b < blocks; b += threads) bar.arrive(b);
        for (int b = t; b < blocks; b += threads) bar.wait(b);
      }
    });
  }
  for (auto& th : ts) th.join();
  return sw.seconds() / rounds * 1e9;
}

} // namespace

int main() {
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  const int threads = std::min(hw, 4);
  const int rounds = 20000;

  Table t("Appendix A - inter-block barrier cost [ns/episode]",
          {"blocks", "lock-free (Xiao&Feng)", "CG-style centralized",
           "CG/lock-free"});
  double big_ratio = 0.0;
  for (const int blocks : {2, 16, 80, 160}) {
    LockFreeBarrier lf(blocks);
    CentralizedBarrier cg(blocks);
    (void)measure(lf, blocks, threads, rounds / 10); // warm-up
    (void)measure(cg, blocks, threads, rounds / 10);
    double t_lf = 1e300, t_cg = 1e300;
    for (int rep = 0; rep < 3; ++rep) { // min-of-3 to suppress OS noise
      t_lf = std::min(t_lf, measure(lf, blocks, threads, rounds));
      t_cg = std::min(t_cg, measure(cg, blocks, threads, rounds));
    }
    big_ratio = t_cg / t_lf;
    t.add_row({Table::num(blocks), Table::fix(t_lf, 0), Table::fix(t_cg, 0),
               Table::fix(big_ratio, 2)});
  }
  t.print(std::cout);

  // The register/occupancy side of Appendix A.
  const auto v100 = perfmodel::tesla_v100();
  perfmodel::KernelResources res;
  res.threads_per_block = 128;
  res.regs_per_thread = 56;
  const int blocks56 = perfmodel::compute_occupancy(v100, res).blocks_per_sm;
  res.regs_per_thread = 64;
  const int blocks64 = perfmodel::compute_occupancy(v100, res).blocks_per_sm;
  std::cout << "occupancy model: calcNode at 56 regs/thread -> " << blocks56
            << " blocks/SM; the CG compilation path at 64 regs -> "
            << blocks64 << " (paper: 9 -> 8).\n";
  std::cout << "paper: GOTHIC keeps the lock-free barrier because it beats "
               "Cooperative-Groups global sync; at V100-scale block counts "
               "(80+) the centralized barrier costs "
            << Table::fix(big_ratio, 2)
            << "x the lock-free one per episode here, on top of the "
               "occupancy loss above.\n";
  return 0;
}
