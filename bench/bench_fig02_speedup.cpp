// Figure 2 — speed-up of Tesla V100 (Pascal mode) over (a) Tesla V100 in
// Volta mode and (b) Tesla P100, as a function of dacc.
//
// Paper: (a) is flat at 1.1-1.2; (b) runs 1.4-2.2 with the >2 region at
// dacc <~ 1e-3 and a decline toward large dacc.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();

  std::cout << "# M31 model, N = " << scale.n << "\n";
  BenchReport rep("fig02_speedup");
  rep.set_scale(scale);
  Table t("Fig 2 - speed-up of V100 (compute_60)",
          {"dacc", "vs V100 compute_70", "vs P100"});
  double min_mode = 1e30, max_mode = 0, min_p100 = 1e30, max_p100 = 0;
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const double t60 = predict_step_time(p, v100, false).total();
    const double t70 = predict_step_time(p, v100, true).total();
    const double tp = predict_step_time(p, p100, false).total();
    const double s_mode = t70 / t60;
    const double s_p100 = tp / t60;
    min_mode = std::min(min_mode, s_mode);
    max_mode = std::max(max_mode, s_mode);
    min_p100 = std::min(min_p100, s_p100);
    max_p100 = std::max(max_p100, s_p100);
    t.add_row({dacc_label(dacc), Table::fix(s_mode, 3),
               Table::fix(s_p100, 3)});
  }
  t.print(std::cout);
  std::cout << "paper: mode speed-up 1.1-1.2 (measured "
            << Table::fix(min_mode, 2) << "-" << Table::fix(max_mode, 2)
            << "); P100 speed-up 1.4-2.2 (measured "
            << Table::fix(min_p100, 2) << "-" << Table::fix(max_p100, 2)
            << "), peak-performance ratio = 1.48\n";
  rep.add_table(t);
  rep.add_note("paper: mode speed-up 1.1-1.2; P100 speed-up 1.4-2.2");
  rep.write(std::cout);
  return 0;
}
