// Micro-benchmarks (google-benchmark) of the substrate primitives: warp
// collectives in both scheduling modes, sub-warp scans/reductions, Morton
// keys, the radix sort (cub stand-in) and the force flush loop. These are
// host-side throughputs of the simulation substrate, not device numbers —
// they guard against performance regressions of the harness itself.
#include "gravity/direct.hpp"
#include "octree/morton.hpp"
#include "octree/radix_sort.hpp"
#include "simt/scan.hpp"
#include "simt/warp.hpp"
#include "util/rng.hpp"

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

namespace {

using namespace gothic;
using namespace gothic::simt;

void BM_WarpShflXor(benchmark::State& state) {
  const auto mode = static_cast<ExecMode>(state.range(0));
  OpCounts c;
  Warp w(mode, c);
  LaneArray<float> v{};
  std::iota(v.begin(), v.end(), 1.0f);
  for (auto _ : state) {
    w.shfl_xor(v, 16);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * kWarpSize);
}
BENCHMARK(BM_WarpShflXor)
    ->Arg(static_cast<int>(ExecMode::Pascal))
    ->Arg(static_cast<int>(ExecMode::Volta));

void BM_WarpReduceAdd(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  for (auto _ : state) {
    LaneArray<float> v{};
    std::iota(v.begin(), v.end(), 1.0f);
    reduce_add(w, v, width);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * kWarpSize);
}
BENCHMARK(BM_WarpReduceAdd)->Arg(8)->Arg(16)->Arg(32);

void BM_WarpInclusiveScan(benchmark::State& state) {
  OpCounts c;
  Warp w(ExecMode::Pascal, c);
  for (auto _ : state) {
    LaneArray<int> v{};
    std::iota(v.begin(), v.end(), 0);
    inclusive_scan_add(w, v, kWarpSize);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * kWarpSize);
}
BENCHMARK(BM_WarpInclusiveScan);

void BM_MortonKeys(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<real> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.uniform());
    y[i] = static_cast<real>(rng.uniform());
    z[i] = static_cast<real>(rng.uniform());
  }
  const auto box = octree::compute_bounding_cube(x, y, z);
  std::vector<std::uint64_t> keys(n);
  for (auto _ : state) {
    octree::morton_keys(box, x, y, z, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MortonKeys)->Arg(1 << 14)->Arg(1 << 17);

void BM_RadixSortPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> master(n);
  for (auto& k : master) k = rng.next() & ((1ull << 63) - 1);
  std::vector<std::uint64_t> keys(n);
  std::vector<index_t> payload(n);
  for (auto _ : state) {
    state.PauseTiming();
    keys = master;
    std::iota(payload.begin(), payload.end(), index_t{0});
    state.ResumeTiming();
    octree::radix_sort_pairs(keys, payload, 63);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 14)->Arg(1 << 17);

void BM_DirectForceKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<real> x(n), y(n), z(n), m(n, real(1.0 / n));
  std::vector<real> ax(n), ay(n), az(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<real>(rng.normal());
    y[i] = static_cast<real>(rng.normal());
    z[i] = static_cast<real>(rng.normal());
  }
  for (auto _ : state) {
    gravity::direct_forces(x, y, z, m, real(0.05), real(1), ax, ay, az);
    benchmark::DoNotOptimize(ax.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n); // pair interactions
}
BENCHMARK(BM_DirectForceKernel)->Arg(1024)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
