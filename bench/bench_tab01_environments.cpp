// Table 1 — the evaluation environments. The paper lists the two host
// systems; our substitute is the set of GPU descriptors the performance
// model runs on, so this bench prints every descriptor next to the values
// quoted in §1/Table 1 and fails loudly if a descriptor drifts.
#include "perfmodel/gpu_spec.hpp"
#include "support/report.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::perfmodel;

  Table t("Table 1 - modelled GPU environments (paper: Tesla V100 SXM2 vs "
          "Tesla P100 SXM2)",
          {"GPU", "arch", "SMs", "FP32/SM", "INT32/SM", "clock[GHz]",
           "peak[TFlop/s]", "BW meas[GB/s]", "HBM2[GiB]"});
  for (const GpuSpec& g : all_gpus()) {
    t.add_row({g.name, arch_name(g.arch), Table::num(g.num_sm),
               Table::num(g.fp32_cores_per_sm),
               Table::num(g.int32_units_per_sm), Table::fix(g.clock_ghz, 3),
               Table::fix(g.fp32_peak_tflops(), 1),
               Table::fix(g.mem_bw_measured_gbs, 0),
               Table::fix(g.global_mem_gib, 0)});
  }
  t.print(std::cout);

  const GpuSpec v = tesla_v100();
  const GpuSpec p = tesla_p100();
  std::cout << "paper S1: peak(V100) = 15.7 TFlop/s, model = "
            << Table::fix(v.fp32_peak_tflops(), 1) << "\n";
  std::cout << "paper S1: peak ratio V100/P100 = 1.5, model = "
            << Table::fix(v.fp32_peak_tflops() / p.fp32_peak_tflops(), 2)
            << "\n";
  std::cout << "paper Fig 8: measured-bandwidth ratio ~1.55, model = "
            << Table::fix(v.mem_bw_measured_gbs / p.mem_bw_measured_gbs, 2)
            << "\n";
  bench::BenchReport rep("tab01_environments");
  rep.add_table(t);
  rep.add_note("descriptor table; no measured profiles in this bench");
  rep.write(std::cout);
  return 0;
}
