// Figure 1 — execution time per step as a function of the accuracy
// controlling parameter dacc, for Tesla V100 (Pascal and Volta modes),
// Tesla P100, GeForce GTX TITAN X, Tesla K20X and Tesla M2090.
//
// The paper's headline row (dacc = 2^-9, N = 2^23): 3.3e-2 s (V100
// compute_60), 3.8e-2 s (V100 compute_70), 7.4e-2 s (P100). Our counts
// are measured at bench scale; shapes and ratios are the reproduction
// target (EXPERIMENTS.md).
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto gpus = perfmodel::all_gpus();

  std::cout << "# M31 model, N = " << scale.n
            << " (paper: 8388608), steps = " << scale.steps << "\n";
  BenchReport rep("fig01_elapsed_vs_macc");
  rep.set_scale(scale);
  Table t("Fig 1 - elapsed time per step [s] vs dacc",
          {"dacc", "V100 c60", "V100 c70", "P100", "TITAN X", "K20X",
           "M2090"});
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    std::vector<std::string> row{dacc_label(dacc)};
    // V100 Pascal mode, V100 Volta mode.
    row.push_back(Table::sci(predict_step_time(p, gpus[0], false).total()));
    row.push_back(Table::sci(predict_step_time(p, gpus[0], true).total()));
    for (std::size_t g = 1; g < gpus.size(); ++g) {
      row.push_back(Table::sci(predict_step_time(p, gpus[g], false).total()));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "expected shape: later GPUs always faster; V100 c60 always "
               "below c70; time rises steeply as dacc shrinks.\n";
  rep.add_table(t);
  rep.add_note("expected shape: later GPUs always faster; V100 c60 always "
               "below c70; time rises steeply as dacc shrinks.");

  // Host substrate check: the predictions above come from op counts that
  // are identical under GOTHIC_SIMD=0/1; record the measured host walk
  // speedup the AVX2 lanes deliver alongside them.
  const SimdWalkSpeedup sp = measure_simd_walk_speedup(init, scale.steps);
  Table st("walkTree substrate speedup (measured host seconds)",
           {"substrate", "walk seconds", "speedup", "ops identical",
            "forces identical"});
  st.add_row({"scalar", Table::sci(sp.scalar_seconds), "1.00", "-", "-"});
  st.add_row({"avx2", Table::sci(sp.simd_seconds),
              sp.simd_available ? Table::fix(sp.speedup(), 2) : "n/a",
              sp.ops_identical ? "yes" : "NO",
              sp.forces_identical ? "yes" : "NO"});
  st.print(std::cout);
  rep.add_table(st);

  rep.write(std::cout);
  return 0;
}
