// Ablation — interaction-list capacity (the shared-memory sizing of §2.1).
//
// A larger per-warp list amortises each flush across more sources (higher
// arithmetic intensity, fewer INT/FP phase alternations) but claims more
// of the shared-memory carve-out, cutting resident blocks per SM. The
// sweep shows both effects through the occupancy-aware timing model.
#include "support/experiment.hpp"

#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <cmath>
#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  auto p = m31_workload(scale.n);
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(p.x, p.y, p.z, tree, perm, octree::BuildConfig{});
  p.apply_permutation(perm);
  octree::calc_node(tree, p.x, p.y, p.z, p.m);

  const std::size_t n = p.size();
  std::vector<real> ax(n), ay(n), az(n);
  gravity::WalkConfig boot;
  boot.eps = real(0.0156);
  boot.mac.type = gravity::MacType::OpeningAngle;
  gravity::walk_tree(tree, p.x, p.y, p.z, p.m, {}, boot, ax, ay, az);
  std::vector<real> amag(n);
  for (std::size_t i = 0; i < n; ++i) {
    amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
  }

  const auto v100 = perfmodel::tesla_v100();

  Table t("ablation: interaction-list capacity (M31, N = " +
              std::to_string(scale.n) + ", dacc = 2^-9)",
          {"entries/warp", "smem/block @512", "blocks/SM", "flushes",
           "V100 walk [s]"});
  for (const int cap : {32, 64, 128, 256, 512}) {
    gravity::WalkConfig cfg;
    cfg.eps = real(0.0156);
    cfg.mac.dacc = real(1.0 / 512);
    cfg.list_capacity = cap;
    simt::OpCounts ops;
    gravity::WalkStats stats;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, ax, ay, az, {},
                       &ops, &stats);

    perfmodel::KernelLaunchInfo info;
    info.resources =
        perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);
    // The resource model's smem footprint follows the list size.
    info.resources.smem_per_block_bytes = (512 / kWarpSize) * cap * 16;
    const auto occ = perfmodel::compute_occupancy(v100, info.resources);
    const double tw = perfmodel::predict_kernel_time(v100, ops, info).total_s;
    t.add_row({Table::num(cap),
               Table::num(info.resources.smem_per_block_bytes),
               Table::num(occ.blocks_per_sm),
               Table::sci(static_cast<double>(stats.flushes)),
               occ.blocks_per_sm == 0 ? "unlaunchable" : Table::sci(tw)});
  }
  t.print(std::cout);
  std::cout << "expected: flushes fall ~linearly with capacity while the "
               "occupancy cliff appears once a block's list no longer fits "
               "the 96 KiB carve-out; GOTHIC's 128-entry default balances "
               "the two.\n";
  return 0;
}
