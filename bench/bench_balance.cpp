// Load balancing — static vs dynamic vs cost-weighted scheduling of the
// gravity walk across block-time-step activity fractions.
//
// GOTHIC balances walkTree by *measured* cost, not item count (Miki &
// Umemura 2017; Bédorf et al. 2012). With block time steps only a
// fraction of the groups is active per step, and the active ones cluster
// in the dense bulk: an equal-count static partition hands one worker
// most of the work while the rest idle. The dynamic work queue bounds the
// imbalance by one chunk; the cost-weighted partition uses last step's
// per-group costs to cut contiguous equal-cost ranges up front.
//
// The schedules are numerically invisible (each group writes disjoint
// output slots) — this bench asserts that bitwise and reports walk
// seconds plus the imbalance ratio (max worker time / mean worker time)
// per (activity fraction, schedule).
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "runtime/device.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

namespace {

using namespace gothic;

const char* schedule_name(gravity::WalkSchedule s) {
  switch (s) {
    case gravity::WalkSchedule::Static: return "static";
    case gravity::WalkSchedule::Dynamic: return "dynamic";
    case gravity::WalkSchedule::CostWeighted: return "cost-weighted";
    case gravity::WalkSchedule::Auto: return "auto";
  }
  return "?";
}

struct RunResult {
  std::vector<real> ax, ay, az, pot;
  double seconds_per_walk = 0.0;
  double imbalance_mean = 0.0;
};

} // namespace

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const int reps = std::max(2, scale.steps);
  auto p = m31_workload(scale.n);
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(p.x, p.y, p.z, tree, perm, octree::BuildConfig{});
  p.apply_permutation(perm);
  octree::calc_node(tree, p.x, p.y, p.z, p.m);

  const std::size_t n = p.size();
  std::vector<real> ax(n), ay(n), az(n);
  gravity::WalkConfig boot;
  boot.eps = real(0.0156);
  boot.mac.type = gravity::MacType::OpeningAngle;
  gravity::walk_tree(tree, p.x, p.y, p.z, p.m, {}, boot, ax, ay, az);
  std::vector<real> amag(n);
  for (std::size_t i = 0; i < n; ++i) {
    amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
  }

  const auto groups = gravity::walk_groups(tree, p.x, p.y, p.z);

  gravity::WalkConfig cfg;
  cfg.eps = real(0.0156);
  cfg.mac.dacc = real(1.0 / 512);

  std::cout << "# runtime workers = " << scale.threads
            << " (override with GOTHIC_THREADS), groups = " << groups.size()
            << ", reps = " << reps << "\n";
  BenchReport rep("balance");
  rep.set_scale(scale);
  Table t("walk scheduling: seconds per walk and imbalance ratio "
          "(M31, N = " + std::to_string(scale.n) + ", dacc = 2^-9)",
          {"active frac", "schedule", "walk [s]", "imbalance", "identical"});

  // Block-time-step proxy: the f*n particles with the largest |a| have the
  // smallest required time step, so they fire (and their groups walk) most
  // often. Ranking by |a| concentrates the active set in the dense bulk —
  // the worst case for an equal-count partition.
  std::vector<std::size_t> by_amag(n);
  std::iota(by_amag.begin(), by_amag.end(), std::size_t{0});
  std::sort(by_amag.begin(), by_amag.end(),
            [&](std::size_t a, std::size_t b) { return amag[a] > amag[b]; });

  bool all_identical = true;
  bool weighted_no_worse = true;
  for (const double frac : {1.0, 0.5, 0.2, 0.05}) {
    const auto n_active =
        std::max<std::size_t>(1, static_cast<std::size_t>(frac * n));
    std::vector<std::uint8_t> body_active(n, 0);
    for (std::size_t i = 0; i < n_active; ++i) body_active[by_amag[i]] = 1;
    std::vector<std::uint8_t> group_active(groups.size(), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::size_t lo = groups[g].first;
      const std::size_t hi = lo + groups[g].count;
      for (std::size_t i = lo; i < hi; ++i) {
        if (body_active[i] != 0) {
          group_active[g] = 1;
          break;
        }
      }
    }

    RunResult results[3];
    for (const auto schedule :
         {gravity::WalkSchedule::Static, gravity::WalkSchedule::Dynamic,
          gravity::WalkSchedule::CostWeighted}) {
      cfg.schedule = schedule;
      RunResult& r = results[static_cast<int>(schedule)];
      r.ax.assign(n, real(0));
      r.ay.assign(n, real(0));
      r.az.assign(n, real(0));
      r.pot.assign(n, real(0));
      gravity::GroupCosts costs;
      // Warm-up walk: populates the cost vector so the cost-weighted
      // partition of the measured reps acts on measured costs, the same
      // steady state Simulation reaches after its bootstrap walk.
      gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, r.ax, r.ay,
                         r.az, r.pot, nullptr, nullptr, group_active, groups,
                         &costs);
      double seconds = 0.0;
      double imb_sum = 0.0;
      for (int i = 0; i < reps; ++i) {
        // Fresh stats per rep: imbalance() is a per-walk ratio, and
        // accumulating reps first would compare reps to each other
        // instead of workers within one walk.
        gravity::WalkStats s;
        const Stopwatch clock;
        gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, r.ax, r.ay,
                           r.az, r.pot, nullptr, &s, group_active, groups,
                           &costs);
        seconds += clock.seconds();
        imb_sum += s.imbalance();
      }
      r.seconds_per_walk = seconds / reps;
      r.imbalance_mean = imb_sum / reps;
    }

    const RunResult& st = results[static_cast<int>(gravity::WalkSchedule::Static)];
    for (const auto schedule :
         {gravity::WalkSchedule::Static, gravity::WalkSchedule::Dynamic,
          gravity::WalkSchedule::CostWeighted}) {
      const RunResult& r = results[static_cast<int>(schedule)];
      const bool identical =
          std::memcmp(r.ax.data(), st.ax.data(), n * sizeof(real)) == 0 &&
          std::memcmp(r.ay.data(), st.ay.data(), n * sizeof(real)) == 0 &&
          std::memcmp(r.az.data(), st.az.data(), n * sizeof(real)) == 0 &&
          std::memcmp(r.pot.data(), st.pot.data(), n * sizeof(real)) == 0;
      all_identical = all_identical && identical;
      t.add_row({Table::fix(frac, 2), schedule_name(schedule),
                 Table::sci(r.seconds_per_walk), Table::fix(r.imbalance_mean, 3),
                 identical ? "yes" : "NO"});
    }
    const double w_imb =
        results[static_cast<int>(gravity::WalkSchedule::CostWeighted)]
            .imbalance_mean;
    // Small tolerance: at frac = 1 with near-uniform costs the two
    // partitions nearly coincide and timer noise decides the comparison.
    if (w_imb > st.imbalance_mean * 1.05 + 0.05) weighted_no_worse = false;
  }

  t.print(std::cout);
  std::cout << "imbalance = busiest worker / mean worker (1 = perfect, "
            << runtime::Device::current().workers()
            << " = serialized); identical = bitwise equal to the static "
               "schedule.\n";
  std::cout << "bitwise identity across schedules: "
            << (all_identical ? "PASS" : "FAIL") << "\n";
  std::cout << "cost-weighted imbalance <= static (with tolerance): "
            << (weighted_no_worse ? "PASS" : "FAIL") << "\n";

  rep.add_table(t);
  rep.add_note(std::string("bitwise identity across schedules: ") +
               (all_identical ? "PASS" : "FAIL"));
  rep.add_note(std::string("cost-weighted imbalance <= static: ") +
               (weighted_no_worse ? "PASS" : "FAIL"));
  rep.write(std::cout);
  return all_identical ? 0 : 1;
}
