// Figure 3 — dependence of the elapsed time per step on the total number
// of particles Ntot, with the per-function breakdown (V100, Pascal mode,
// dacc = 2^-9).
//
// Paper shape: walkTree dominates everywhere; calcNode is non-negligible
// at small Ntot; all curves flatten into the launch-latency floor below
// Ntot ~ 1e4. (Paper reaches 25*2^20 particles; bench scale is capped by
// the container, override with GOTHIC_BENCH_NMAX.)
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "perfmodel/capacity.hpp"
#include "runtime/device.hpp"
#include "trace/session.hpp"
#include "util/env.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const auto v100 = perfmodel::tesla_v100();
  const double dacc = 1.0 / 512.0; // the paper's fiducial 2^-9
  const std::size_t n_max = env_size("GOTHIC_BENCH_NMAX", 131072);

  std::cout << "# runtime workers = " << BenchScale::from_env().threads
            << " (override with GOTHIC_THREADS)\n";
  BenchReport rep("fig03_scaling_n");
  rep.set_scale(BenchScale::from_env());
  // Observe every profiled launch: per-kernel latency histograms for the
  // report, plus a Perfetto trace when GOTHIC_TRACE is set.
  trace::Session session;
  Table t("Fig 3 - elapsed time per step [s] vs Ntot (V100 compute_60, "
          "dacc=2^-9)",
          {"Ntot", "total", "walkTree", "calcNode", "makeTree", "pred/corr"});
  Table ov("Achieved stream overlap per step [s] (this machine, "
           "GOTHIC_ASYNC scheduler)",
           {"Ntot", "kernel-sum", "step-wall", "overlap", "walk-imbalance"});
  double prev_total = 0.0;
  bool monotone = true;
  for (std::size_t n = 1024; n <= n_max; n *= 4) {
    const auto init = m31_workload(n);
    const StepProfile p = profile_step(init, dacc, 1, 128, &session);
    rep.add_profile("N=" + std::to_string(n), p);
    const GpuStepTime gt = predict_step_time(p, v100, false);
    t.add_row({Table::num(static_cast<long long>(n)),
               Table::sci(gt.total()), Table::sci(gt.walk),
               Table::sci(gt.calc), Table::sci(gt.make),
               Table::sci(gt.pred)});
    ov.add_row({Table::num(static_cast<long long>(n)),
                Table::sci(p.measured_kernel_seconds),
                Table::sci(p.measured_wall_seconds),
                Table::sci(p.measured_overlap_seconds()),
                Table::sci(p.walk_stats.imbalance())});
    if (gt.total() < prev_total) monotone = false;
    prev_total = gt.total();
  }
  t.print(std::cout);
  ov.print(std::cout);
  std::cout << "overlap = sum of kernel seconds - step wall span: the gap "
               "concurrent streams hide (GOTHIC_ASYNC=0 serialises it "
               "away).\n";
  std::cout << "expected shape: gravity dominates; total "
            << (monotone ? "grows monotonically with Ntot"
                         : "NON-MONOTONE (unexpected)")
            << "; small-N region sits on the launch-latency floor.\n";

  // The capacity side of §3: fewer SMs leave more HBM2 for particles.
  std::cout << "capacity model (per-SM traversal buffers, §3): "
            << "V100 16GB -> " << perfmodel::max_particles(v100)
            << " particles (paper 26214400); P100 16GB -> "
            << perfmodel::max_particles(perfmodel::tesla_p100())
            << " (paper 31457280); V100 32GB -> "
            << perfmodel::max_particles(perfmodel::tesla_v100_32gb())
            << ".\n";
  session.finish(runtime::Device::current());
  if (session.tracing()) {
    std::cout << "perfetto trace: " << session.trace_path() << "\n";
  }
  rep.add_table(t);
  rep.add_table(ov);
  rep.add_metrics(session.metrics());
  rep.add_note("expected shape: gravity dominates; small-N region sits on "
               "the launch-latency floor");
  rep.write(std::cout);
  return 0;
}
