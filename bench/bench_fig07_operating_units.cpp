// Figure 7 — instruction counts grouped by operating unit: integer,
// FP32 (= FMA + mul + add), max(integer, FP32) and integer + FP32.
//
// Paper: FP32 always exceeds integer, so max == FP32 — the Volta pipe
// split hides the entire integer column; the sum is what a pre-Volta GPU
// must execute.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);

  std::cout << "# walkTree per step, M31, N = " << scale.n << "\n";
  BenchReport rep("fig07_operating_units");
  rep.set_scale(scale);
  Table t("Fig 7 - instructions by operating unit",
          {"dacc", "integer", "FP32", "max(int,FP32)", "int+FP32",
           "hiding ratio"});
  bool fp_always_max = true;
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const std::uint64_t fp = p.walk.fp32_core_instructions();
    const std::uint64_t in = p.walk.int_ops;
    const std::uint64_t mx = std::max(fp, in);
    if (mx != fp) fp_always_max = false;
    t.add_row({dacc_label(dacc), Table::sci(static_cast<double>(in)),
               Table::sci(static_cast<double>(fp)),
               Table::sci(static_cast<double>(mx)),
               Table::sci(static_cast<double>(fp + in)),
               Table::fix(static_cast<double>(fp + in) /
                              static_cast<double>(mx), 3)});
  }
  t.print(std::cout);
  std::cout << "paper: FP32 counts always above integer => max(int,FP32) "
               "== FP32: " << (fp_always_max ? "holds" : "VIOLATED")
            << " in this run.\n";
  rep.add_table(t);
  rep.add_note(std::string("max(int,FP32) == FP32: ") +
               (fp_always_max ? "holds" : "VIOLATED"));
  rep.write(std::cout);
  return 0;
}
