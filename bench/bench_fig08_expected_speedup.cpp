// Figure 8 — the paper's analytic prediction of the V100/P100 speed-up:
//   * magenta line: theoretical-peak ratio (~1.48)
//   * black line:   measured-bandwidth ratio (~1.55)
//   * blue curve:   "hiding" ratio (int+FP32)/max(int,FP32) from Fig 7
//   * red curve:    peak ratio x hiding ratio = the expected speed-up
// alongside the speed-up our full model actually produces (the Fig 2
// quantity), which falls below the expectation at large dacc exactly as
// the paper observes (§4.2).
#include "support/experiment.hpp"
#include "support/report.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto init = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();
  const auto p100 = perfmodel::tesla_p100();

  std::cout << "# M31 model, N = " << scale.n << "\n";
  BenchReport rep("fig08_expected_speedup");
  rep.set_scale(scale);
  Table t("Fig 8 - expected V100/P100 speed-up decomposition (walkTree)",
          {"dacc", "peak ratio", "BW ratio", "hiding ratio", "expected",
           "full model"});
  for (const double dacc : dacc_sweep(scale.dacc_min_exp)) {
    const StepProfile p = profile_step(init, dacc, scale.steps);
    rep.add_profile(dacc_label(dacc), p);
    const auto s =
        perfmodel::expected_speedup(v100, p100, pascal_view(p.walk));
    const double observed = predict_step_time(p, p100, false).walk /
                            predict_step_time(p, v100, false).walk;
    t.add_row({dacc_label(dacc), Table::fix(s.peak_ratio, 2),
               Table::fix(s.bw_ratio, 2), Table::fix(s.hiding_ratio, 3),
               Table::fix(s.expected, 2), Table::fix(observed, 2)});
  }
  t.print(std::cout);
  std::cout << "paper: expected ~2.2-2.7 (rising with dacc); observed "
               "agrees at dacc <~ 1e-3 and falls below the expectation at "
               "larger dacc (memory/latency effects).\n";
  rep.add_table(t);
  rep.add_note("paper: expected ~2.2-2.7; observed falls below at large "
               "dacc");
  rep.write(std::cout);
  return 0;
}
