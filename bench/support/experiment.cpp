#include "support/experiment.hpp"

#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"
#include "runtime/device.hpp"
#include "simt/simd.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gothic::bench {

namespace {
constexpr auto kWalk = static_cast<std::size_t>(Kernel::WalkTree);
constexpr auto kCalc = static_cast<std::size_t>(Kernel::CalcNode);
constexpr auto kMake = static_cast<std::size_t>(Kernel::MakeTree);
constexpr auto kPred = static_cast<std::size_t>(Kernel::PredictCorrect);

/// Fractional per-step growth of the walk cost as the tree ages — the
/// quantity GOTHIC's auto-tuner estimates from live timings (§4.1 reports
/// intervals of ~6 steps for accurate walks and ~30 for cheap ones, which
/// back-solves to about 0.2% per step).
constexpr double kWalkDecayPerStep = 0.002;
} // namespace

BenchScale BenchScale::from_env() {
  BenchScale s;
  s.n = env_size("GOTHIC_BENCH_N", 32768);
  s.steps = static_cast<int>(env_size("GOTHIC_BENCH_STEPS", 1));
  s.dacc_min_exp = static_cast<int>(env_size("GOTHIC_BENCH_DACC_MIN", 14));
  s.threads = runtime::Device::default_workers();
  s.async = runtime::Device::default_async();
  s.simd = simt::simd_enabled();
  return s;
}

simt::OpCounts StepProfile::make_amortized() const {
  simt::OpCounts amortized;
  // Integer division of every field via the throughput trick: scale the
  // counts by 1/interval (rounded) — fields are independent tallies.
  const double inv = 1.0 / std::max(rebuild_interval, 1.0);
  auto scale = [inv](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * inv);
  };
  amortized.int_ops = scale(make_raw.int_ops);
  amortized.fp32_fma = scale(make_raw.fp32_fma);
  amortized.fp32_mul = scale(make_raw.fp32_mul);
  amortized.fp32_add = scale(make_raw.fp32_add);
  amortized.fp32_special = scale(make_raw.fp32_special);
  amortized.bytes_load = scale(make_raw.bytes_load);
  amortized.bytes_store = scale(make_raw.bytes_store);
  amortized.syncwarp = scale(make_raw.syncwarp);
  amortized.tile_sync = scale(make_raw.tile_sync);
  amortized.block_sync = scale(make_raw.block_sync);
  amortized.global_barrier = scale(make_raw.global_barrier);
  amortized.shfl = scale(make_raw.shfl);
  amortized.ballot = scale(make_raw.ballot);
  return amortized;
}

nbody::Particles m31_workload(std::size_t n) {
  return galaxy::build_m31(n, /*seed=*/20190805);
}

StepProfile profile_step(const nbody::Particles& init, double dacc,
                         int steps, int list_capacity,
                         runtime::RecordListener* listener) {
  nbody::SimConfig cfg;
  cfg.walk.mac.type = gravity::MacType::Acceleration;
  cfg.walk.mac.dacc = static_cast<real>(dacc);
  cfg.walk.eps = real(0.0156); // ~16 pc in kpc units, galaxy-scale softening
  cfg.walk.list_capacity = list_capacity;
  cfg.set_mode(simt::ExecMode::Volta); // superset counts; pascal_view strips
  cfg.block_time_steps = false;        // every particle active (full steps)
  cfg.dt_max = 1.0 / 4096;             // tiny drift during profiling
  cfg.auto_rebuild = false;
  cfg.fixed_rebuild_interval = 1 << 30; // rebuilds measured separately

  nbody::Simulation sim(init, cfg);
  if (listener != nullptr) sim.set_instrumentation_listener(listener);

  StepProfile p;
  p.n = init.size();
  p.dacc = dacc;

  // Measure one rebuild exactly: force it by running a dedicated step
  // with the interval set low. Instead we rebuild through the public API:
  // the constructor already performed one; measure another via a fresh
  // profile of kernel_ops deltas around a forced-rebuild step.
  // Simpler: capture the constructor's makeTree counts.
  p.make_raw = sim.kernel_ops(Kernel::MakeTree);

  // Warm step: establishes aold for the acceleration MAC and absorbs the
  // bootstrap opening-angle walk out of the measured window.
  (void)sim.step();

  simt::OpCounts w0 = sim.kernel_ops(Kernel::WalkTree);
  simt::OpCounts c0 = sim.kernel_ops(Kernel::CalcNode);
  simt::OpCounts i0 = sim.kernel_ops(Kernel::PredictCorrect);
  gravity::WalkStats stats;
  for (int s = 0; s < steps; ++s) {
    const nbody::StepReport r = sim.step();
    stats += r.walk_stats;
    p.measured_kernel_seconds += r.total_seconds();
    p.measured_wall_seconds += r.wall_seconds;
  }
  p.measured_kernel_seconds /= std::max(steps, 1);
  p.measured_wall_seconds /= std::max(steps, 1);
  auto minus = [](const simt::OpCounts& a, const simt::OpCounts& b) {
    simt::OpCounts d;
    d.int_ops = a.int_ops - b.int_ops;
    d.fp32_fma = a.fp32_fma - b.fp32_fma;
    d.fp32_mul = a.fp32_mul - b.fp32_mul;
    d.fp32_add = a.fp32_add - b.fp32_add;
    d.fp32_special = a.fp32_special - b.fp32_special;
    d.bytes_load = a.bytes_load - b.bytes_load;
    d.bytes_store = a.bytes_store - b.bytes_store;
    d.syncwarp = a.syncwarp - b.syncwarp;
    d.tile_sync = a.tile_sync - b.tile_sync;
    d.block_sync = a.block_sync - b.block_sync;
    d.global_barrier = a.global_barrier - b.global_barrier;
    d.shfl = a.shfl - b.shfl;
    d.ballot = a.ballot - b.ballot;
    return d;
  };
  auto per_step = [steps](simt::OpCounts c) {
    const auto div = static_cast<std::uint64_t>(steps);
    c.int_ops /= div;
    c.fp32_fma /= div;
    c.fp32_mul /= div;
    c.fp32_add /= div;
    c.fp32_special /= div;
    c.bytes_load /= div;
    c.bytes_store /= div;
    c.syncwarp /= div;
    c.tile_sync /= div;
    c.block_sync /= div;
    c.global_barrier /= div;
    c.shfl /= div;
    c.ballot /= div;
    return c;
  };
  p.walk = per_step(minus(sim.kernel_ops(Kernel::WalkTree), w0));
  p.calc = per_step(minus(sim.kernel_ops(Kernel::CalcNode), c0));
  p.pred = per_step(minus(sim.kernel_ops(Kernel::PredictCorrect), i0));
  p.walk_stats = stats;

  // GOTHIC's auto-tuned rebuild interval k* = sqrt(2 T_make / (alpha
  // T_walk)) from the modelled V100 times of the two kernels (§4.1: ~6
  // steps at the highest accuracy, ~30 at the lowest).
  const auto v100 = perfmodel::tesla_v100();
  perfmodel::KernelLaunchInfo make_info;
  make_info.resources =
      perfmodel::kernel_resources(perfmodel::GothicKernel::MakeTree, 512);
  perfmodel::KernelLaunchInfo walk_info;
  walk_info.resources =
      perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);
  const double t_make =
      perfmodel::predict_kernel_time(v100, pascal_view(p.make_raw), make_info)
          .total_s;
  const double t_walk =
      perfmodel::predict_kernel_time(v100, pascal_view(p.walk), walk_info)
          .total_s;
  const double k =
      std::sqrt(2.0 * t_make / (kWalkDecayPerStep * std::max(t_walk, 1e-12)));
  p.rebuild_interval = std::clamp(k, 2.0, 64.0);
  return p;
}

simt::OpCounts pascal_view(const simt::OpCounts& volta_counts) {
  simt::OpCounts c = volta_counts;
  c.syncwarp = 0;
  c.tile_sync = 0;
  return c;
}

GpuStepTime predict_step_time(const StepProfile& p,
                              const perfmodel::GpuSpec& gpu,
                              bool volta_mode) {
  using perfmodel::GothicKernel;
  const bool use_sync = volta_mode && gpu.arch == perfmodel::Arch::Volta;
  auto view = [use_sync](const simt::OpCounts& c) {
    return use_sync ? c : pascal_view(c);
  };

  auto time_of = [&](const simt::OpCounts& ops, GothicKernel k,
                     int invocations) {
    perfmodel::KernelLaunchInfo info;
    // Table 2 thread-block sizes (V100 column; the P100 optimum differs
    // only for calcNode's Ttot, a second-order effect on the model).
    const int ttot = (k == GothicKernel::CalcNode) ? 128 : 512;
    info.resources = perfmodel::kernel_resources(k, ttot);
    info.invocations = invocations;
    return perfmodel::predict_kernel_time(gpu, view(ops), info).total_s;
  };

  GpuStepTime t;
  t.walk = time_of(p.walk, GothicKernel::WalkTree, 1);
  t.calc = time_of(p.calc, GothicKernel::CalcNode, 1);
  // One rebuild every rebuild_interval steps: amortise both the work and
  // the launch.
  t.make = time_of(p.make_raw, GothicKernel::MakeTree, 1) /
           std::max(p.rebuild_interval, 1.0);
  t.pred = time_of(p.pred, GothicKernel::Predict, 2); // predict + correct
  return t;
}

SimdWalkSpeedup measure_simd_walk_speedup(const nbody::Particles& init,
                                          int steps) {
  SimdWalkSpeedup out;
  out.simd_available = simt::simd_available();

  // Tree-order the workload once; both substrates walk the same tree.
  std::vector<real> x = init.x, y = init.y, z = init.z, m = init.m;
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(x, y, z, tree, perm, octree::BuildConfig{});
  auto apply = [&perm](std::vector<real>& v) {
    std::vector<real> sorted(v.size());
    octree::gather(v, perm, sorted);
    v = std::move(sorted);
  };
  apply(x);
  apply(y);
  apply(z);
  apply(m);
  octree::calc_node(tree, x, y, z, m);

  gravity::WalkConfig cfg;
  cfg.mac.type = gravity::MacType::OpeningAngle;
  cfg.mac.theta = real(0.7);
  cfg.eps = real(0.0156);

  const std::size_t n = x.size();
  std::vector<real> sax(n), say(n), saz(n); // scalar forces
  std::vector<real> vax(n), vay(n), vaz(n); // simd forces
  simt::OpCounts scalar_ops, simd_ops;

  // Group construction is host bookkeeping the pipeline amortises across
  // steps (Simulation rebuilds groups only with the tree), so it stays
  // outside the timed region: this measures the walk kernel itself.
  const std::vector<gravity::GroupSpan> groups =
      gravity::walk_groups(tree, x, y, z);

  auto timed_walk = [&](bool use_simd, std::vector<real>& ax,
                        std::vector<real>& ay, std::vector<real>& az,
                        simt::OpCounts& ops) {
    simt::ScopedSimd guard(use_simd);
    const Stopwatch clock;
    for (int s = 0; s < steps; ++s) {
      gravity::walk_tree(tree, x, y, z, m, {}, cfg, ax, ay, az, {}, &ops,
                         nullptr, {}, groups);
    }
    return clock.seconds();
  };
  out.scalar_seconds = timed_walk(false, sax, say, saz, scalar_ops);
  out.simd_seconds = timed_walk(true, vax, vay, vaz, simd_ops);

  out.ops_identical = scalar_ops == simd_ops;
  out.forces_identical = sax == vax && say == vay && saz == vaz;
  return out;
}

std::vector<double> dacc_sweep(int min_exp, int stride) {
  std::vector<double> out;
  for (int e = 1; e <= min_exp; e += stride) {
    out.push_back(std::ldexp(1.0, -e));
  }
  return out;
}

std::string dacc_label(double dacc) {
  const int e = static_cast<int>(std::lround(-std::log2(dacc)));
  char buf[16];
  std::snprintf(buf, sizeof buf, "2^-%d", e);
  return buf;
}

} // namespace gothic::bench
