// bench::BaselineStore + diff_baselines — the noise-aware perf-regression
// gate over BENCH_*.json trees (driven by tools/bench_diff and check.sh).
//
// A store is a directory of BENCH_<name>[.<variant>][.run<K>].json reports
// (the archived trajectory under bench-results/, or a fresh bench-smoke
// output tree). Reports sharing a canonical key — the filename minus the
// optional ".run<K>" repeat suffix and the ".json" extension — are
// aggregated per metric with MIN across the K runs: wall-clock noise is
// strictly additive, so the minimum is the noise-aware estimator of the
// true cost (the paper's own measurements are best-of-repeats for the
// same reason).
//
// diff_baselines pairs canonical keys across two stores and gates the
// timing metrics:
//   * profiles[label].measured.{kernel_seconds, wall_seconds}
//   * metrics.kernels[kernel].seconds
//   * numeric cells of table columns whose header names a time
//     ("second", "elapsed", "time", or the "[s]" unit suffix)
// A regression is candidate > baseline * (1 + threshold) AND
// candidate - baseline > abs_floor — the relative gate catches real
// slowdowns, the absolute floor keeps micro-second cells from tripping it.
// Deterministic counts (op tallies) and log2-quantized p50/p95 are
// compared informationally (notes, never failures). Reports whose scale
// stanza differs (n/steps/dacc sweep/async/simd) are skipped with a note:
// the trajectories are not comparable. Schema violations (not a BENCH
// report) are errors.
#pragma once

#include "util/minijson.hpp"

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace gothic::bench {

struct DiffOptions {
  /// Relative slowdown gate: regression when candidate exceeds
  /// baseline * (1 + threshold).
  double threshold = 0.5;
  /// Absolute noise floor in seconds: deltas at or below it never gate.
  double abs_floor = 2e-3;
};

struct DiffFinding {
  std::string report; ///< canonical key, e.g. "BENCH_balance.async1"
  std::string metric; ///< dotted metric path within the report
  double baseline = 0.0;
  double candidate = 0.0;

  /// candidate/baseline slowdown ratio (inf-safe: 0 when baseline is 0).
  [[nodiscard]] double ratio() const {
    return baseline > 0.0 ? candidate / baseline : 0.0;
  }
};

struct DiffReport {
  std::vector<DiffFinding> regressions;
  std::vector<std::string> compared; ///< canonical keys gated
  std::vector<std::string> notes;    ///< skips + informational drift
  std::vector<std::string> errors;   ///< schema/parse failures

  [[nodiscard]] bool ok() const {
    return regressions.empty() && errors.empty();
  }
  /// Human-readable summary.
  void print(std::ostream& os, const DiffOptions& opt) const;
  /// Machine-readable summary (schema-pinned; see EXPERIMENTS.md).
  [[nodiscard]] std::string json(const DiffOptions& opt) const;
};

class BaselineStore {
public:
  /// Scans `dir` for BENCH_*.json (non-recursive). A missing directory is
  /// an empty store.
  explicit BaselineStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  /// Canonical key -> report files (repeat runs grouped together).
  [[nodiscard]] const std::map<std::string, std::vector<std::string>>&
  entries() const {
    return entries_;
  }

  /// "BENCH_shard.async0.run3.json" -> "BENCH_shard.async0".
  [[nodiscard]] static std::string canonical_key(const std::string& filename);

private:
  std::string dir_;
  std::map<std::string, std::vector<std::string>> entries_;
};

/// Gate `candidate` against `baseline` (see file comment for the rules).
[[nodiscard]] DiffReport diff_baselines(const BaselineStore& baseline,
                                        const BaselineStore& candidate,
                                        const DiffOptions& opt);

/// Archive every candidate report into the baseline directory (creating
/// it if needed, overwriting same-named files) — the --update-baseline
/// mode that commits a new point on the BENCH trajectory. Returns the
/// number of files copied.
std::size_t update_baseline(const BaselineStore& baseline,
                            const BaselineStore& candidate);

} // namespace gothic::bench
