// Machine-readable bench output: every figure/table bench assembles a
// BenchReport alongside its printed tables and writes it as
// BENCH_<name>.json — scale, tables (title/headers/rows), per-profile
// measurements (per-kernel seconds, op-category counts, overlap), and an
// optional metrics-registry summary (per-kernel p50/p95/max latency).
//
// Destination: $GOTHIC_BENCH_JSON_DIR/BENCH_<name>.json, or the working
// directory when the variable is unset. The schema is documented in
// EXPERIMENTS.md; tools/check.sh validates one emitted file per run.
#pragma once

#include "support/experiment.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"

#include <iosfwd>
#include <string>

namespace gothic::bench {

class BenchReport {
public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit BenchReport(std::string name);

  void set_scale(const BenchScale& scale);
  /// Scale with the scenario matrix fingerprint: appends "scenario" (the
  /// registry entry name) and "force" (force_law_name) keys, so
  /// bench_diff refuses to compare reports from different scenarios (the
  /// baseline store folds every scale key into its fingerprint).
  void set_scale(const BenchScale& scale, const std::string& scenario,
                 const std::string& force);
  /// Serialise a printed table verbatim (title, headers, string rows).
  void add_table(const Table& t);
  /// One measured configuration: per-kernel op-category counts plus the
  /// host-side kernel/wall/overlap seconds of the profiled steps.
  void add_profile(const std::string& label, const StepProfile& p);
  /// Per-kernel launch/latency summary from an attached metrics registry.
  void add_metrics(const trace::MetricsRegistry& m);
  void add_note(const std::string& note);

  /// The assembled JSON document.
  [[nodiscard]] std::string json() const;
  /// Destination path: $GOTHIC_BENCH_JSON_DIR (or cwd) / BENCH_<name>.json.
  [[nodiscard]] std::string path() const;
  /// Write json() to path(); logs the destination (or the failure) to
  /// `log`. Returns false on I/O failure.
  bool write(std::ostream& log) const;

private:
  std::string name_;
  std::string scale_json_;
  std::string tables_json_;   ///< comma-joined array elements
  std::string profiles_json_; ///< comma-joined array elements
  std::string metrics_json_;
  std::string notes_json_; ///< comma-joined array elements
};

} // namespace gothic::bench
