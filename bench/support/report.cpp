#include "support/report.hpp"

#include "util/env.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace gothic::bench {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Built with += rather than `"\"" + escaped(s) + "\""` — the rvalue
// operator+ chain trips a GCC 12 -Wrestrict false positive when inlined.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  out += escaped(s);
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan literals; a bench should never produce them, but
  // keep the document parseable if one does.
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

/// {"int32": ..., "fp32": ..., ...} over every OpCategory.
std::string ops_json(const simt::OpCounts& ops) {
  std::string out = "{";
  for (int c = 0; c < static_cast<int>(simt::OpCategory::Count); ++c) {
    const auto cat = static_cast<simt::OpCategory>(c);
    if (c != 0) out += ", ";
    out += "\"";
    out += simt::op_category_name(cat);
    out += "\": " + num(simt::op_category_value(ops, cat));
  }
  return out + "}";
}

void append_element(std::string& array, std::string element) {
  if (!array.empty()) array += ",\n    ";
  array += std::move(element);
}

} // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::set_scale(const BenchScale& scale) {
  scale_json_ = "{\"n\": " + num(static_cast<std::uint64_t>(scale.n)) +
                ", \"steps\": " + std::to_string(scale.steps) +
                ", \"dacc_min_exp\": " + std::to_string(scale.dacc_min_exp) +
                ", \"threads\": " + std::to_string(scale.threads) +
                ", \"async\": " + (scale.async ? "true" : "false") +
                ", \"simd\": " + (scale.simd ? "true" : "false") + "}";
}

void BenchReport::set_scale(const BenchScale& scale,
                            const std::string& scenario,
                            const std::string& force) {
  set_scale(scale);
  scale_json_.pop_back(); // reopen the object to append the matrix keys
  scale_json_ += ", \"scenario\": " + quoted(scenario) +
                 ", \"force\": " + quoted(force) + "}";
}

void BenchReport::add_table(const Table& t) {
  std::string e = "{\"title\": " + quoted(t.title()) + ",\n     \"headers\": [";
  for (std::size_t c = 0; c < t.cols(); ++c) {
    if (c != 0) e += ", ";
    e += quoted(t.headers()[c]);
  }
  e += "],\n     \"rows\": [";
  for (std::size_t r = 0; r < t.rows(); ++r) {
    if (r != 0) e += ",\n              ";
    e += "[";
    for (std::size_t c = 0; c < t.cols(); ++c) {
      if (c != 0) e += ", ";
      e += quoted(t.cell(r, c));
    }
    e += "]";
  }
  e += "]}";
  append_element(tables_json_, std::move(e));
}

void BenchReport::add_profile(const std::string& label, const StepProfile& p) {
  std::string e = "{\"label\": " + quoted(label) +
                  ", \"n\": " + num(static_cast<std::uint64_t>(p.n)) +
                  ", \"dacc\": " + num(p.dacc) +
                  ", \"rebuild_interval\": " + num(p.rebuild_interval) +
                  ",\n     \"measured\": {\"kernel_seconds\": " +
                  num(p.measured_kernel_seconds) +
                  ", \"wall_seconds\": " + num(p.measured_wall_seconds) +
                  ", \"overlap_seconds\": " + num(p.measured_overlap_seconds()) +
                  ", \"raw_overlap_seconds\": " +
                  num(p.measured_raw_overlap_seconds()) +
                  ", \"walk_imbalance\": " + num(p.walk_stats.imbalance()) +
                  "}";
  e += ",\n     \"ops\": {\"walkTree\": " + ops_json(p.walk) +
       ",\n             \"calcNode\": " + ops_json(p.calc) +
       ",\n             \"makeTree_rebuild\": " + ops_json(p.make_raw) +
       ",\n             \"pred_corr\": " + ops_json(p.pred) + "}}";
  append_element(profiles_json_, std::move(e));
}

void BenchReport::add_metrics(const trace::MetricsRegistry& m) {
  std::string kernels;
  for (int k = 0; k < static_cast<int>(Kernel::Count); ++k) {
    const trace::KernelStats& ks = m.kernel(static_cast<Kernel>(k));
    if (ks.launches == 0) continue;
    if (!kernels.empty()) kernels += ",\n      ";
    kernels += "{\"kernel\": \"";
    kernels += kernel_name(static_cast<Kernel>(k));
    kernels += "\", \"launches\": " + num(ks.launches) +
               ", \"seconds\": " + num(ks.seconds) +
               ",\n       \"p50_seconds\": " + num(ks.latency.p50_seconds()) +
               ", \"p95_seconds\": " + num(ks.latency.p95_seconds()) +
               ", \"max_seconds\": " + num(ks.latency.max_seconds()) +
               ",\n       \"ops\": " + ops_json(ks.ops) + "}";
  }
  metrics_json_ =
      "{\"kernels\": [" + kernels + "],\n    \"steps\": " + num(m.steps()) +
      ", \"negative_overlap_steps\": " + num(m.negative_overlap_steps()) +
      ", \"min_raw_overlap_seconds\": " + num(m.min_raw_overlap_seconds()) +
      ",\n    \"overlap_seconds_total\": " + num(m.overlap_seconds_total()) +
      ", \"arena_capacity_bytes\": " +
      num(static_cast<std::uint64_t>(m.arena_capacity_bytes())) +
      ", \"arena_heap_allocations\": " + num(m.arena_heap_allocations()) +
      ", \"workers\": " + std::to_string(m.workers()) +
      ",\n    \"imbalance_steps\": " + num(m.imbalance_steps()) +
      ", \"imbalance_mean\": " + num(m.imbalance_mean()) +
      ", \"imbalance_max\": " + num(m.imbalance_max()) +
      ",\n    \"worker_busy_seconds_max\": " + num(m.worker_busy_seconds_max()) +
      ", \"worker_busy_seconds_total\": " +
      num(m.worker_busy_seconds_total()) +
      ", \"busy_workers\": " + std::to_string(m.busy_workers()) + "}";
}

void BenchReport::add_note(const std::string& note) {
  append_element(notes_json_, quoted(note));
}

std::string BenchReport::json() const {
  std::string out = "{\n  \"bench\": " + quoted(name_);
  if (!scale_json_.empty()) out += ",\n  \"scale\": " + scale_json_;
  out += ",\n  \"tables\": [\n    " + tables_json_ + "\n  ]";
  if (!profiles_json_.empty()) {
    out += ",\n  \"profiles\": [\n    " + profiles_json_ + "\n  ]";
  }
  if (!metrics_json_.empty()) out += ",\n  \"metrics\": " + metrics_json_;
  if (!notes_json_.empty()) {
    out += ",\n  \"notes\": [\n    " + notes_json_ + "\n  ]";
  }
  return out + "\n}\n";
}

std::string BenchReport::path() const {
  std::string dir = env_string("GOTHIC_BENCH_JSON_DIR", "");
  std::string file = "BENCH_" + name_ + ".json";
  if (dir.empty()) return file;
  if (dir.back() != '/') dir += '/';
  return dir + file;
}

bool BenchReport::write(std::ostream& log) const {
  const std::string dest = path();
  std::ofstream os(dest);
  if (os) os << json();
  if (!os) {
    // The bench log is routinely redirected to /dev/null in CI, so a bad
    // GOTHIC_BENCH_JSON_DIR must also hit stderr or the report silently
    // never materializes.
    std::fprintf(stderr,
                 "gothic: error: could not write bench report %s "
                 "(check GOTHIC_BENCH_JSON_DIR)\n",
                 dest.c_str());
    log << "warning: could not write " << dest << "\n";
    return false;
  }
  log << "machine-readable report: " << dest << "\n";
  return true;
}

} // namespace gothic::bench
