#include "support/baseline.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <ostream>

namespace gothic::bench {

namespace {

namespace fs = std::filesystem;
using minijson::JsonValue;

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Does the table header name a wall-clock quantity? Only such columns
/// are gated; count/label columns are compared informationally at most.
/// "[s]" is the unit suffix the bench tables put on seconds columns
/// ("walk [s]", "elapsed [s]", "busy max [s]").
bool is_timing_header(const std::string& header) {
  const std::string h = lower(header);
  return h.find("second") != std::string::npos ||
         h.find("elapsed") != std::string::npos ||
         h.find("time") != std::string::npos ||
         h.find("[s]") != std::string::npos;
}

bool parse_cell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str()) return false;
  // Allow a trailing unit suffix only when separated (e.g. "1.2 ms" is
  // rejected — table cells in this repo are plain numbers or labels).
  while (*end == ' ') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

/// The gated (timing) and informational (count/quantized) numeric leaves
/// of one parsed BENCH report, keyed by a dotted metric path.
struct MetricSet {
  std::map<std::string, double> timing;
  std::map<std::string, double> info;
  std::string scale; ///< comparability fingerprint (see extract)
};

void extract_profile(const JsonValue& p, MetricSet* out) {
  const std::string label =
      p.has("label") ? p.at("label").str : std::string("?");
  if (p.has("measured")) {
    const JsonValue& m = p.at("measured");
    for (const char* key : {"kernel_seconds", "wall_seconds"}) {
      if (m.has(key) && m.at(key).type == JsonValue::Type::Number) {
        out->timing["profiles[" + label + "].measured." + key] =
            m.at(key).number;
      }
    }
  }
  if (p.has("ops")) {
    for (const auto& [kernel, ops] : p.at("ops").object) {
      for (const auto& [cat, v] : ops.object) {
        if (v.type == JsonValue::Type::Number) {
          out->info["profiles[" + label + "].ops." + kernel + "." + cat] =
              v.number;
        }
      }
    }
  }
}

void extract_table(const JsonValue& t, MetricSet* out) {
  if (!t.has("title") || !t.has("headers") || !t.has("rows")) return;
  const std::string title = t.at("title").str;
  const auto& headers = t.at("headers").array;
  for (const JsonValue& row : t.at("rows").array) {
    if (row.array.empty()) continue;
    const std::string row_label = row.array.front().str;
    for (std::size_t c = 1; c < row.array.size() && c < headers.size();
         ++c) {
      if (!is_timing_header(headers[c].str)) continue;
      double v = 0.0;
      if (!parse_cell(row.array[c].str, &v)) continue;
      out->timing["tables[" + title + "][" + row_label + "]." +
                  headers[c].str] = v;
    }
  }
}

/// Pull the comparable metrics out of one report DOM. Throws
/// std::runtime_error on schema violations.
MetricSet extract(const JsonValue& doc) {
  if (doc.type != JsonValue::Type::Object || !doc.has("bench") ||
      !doc.has("tables")) {
    throw std::runtime_error(
        "not a BENCH report (missing \"bench\"/\"tables\")");
  }
  MetricSet out;
  if (doc.has("scale")) {
    // Reports are comparable only at the same problem scale,
    // scheduler/substrate configuration, and workload identity (the
    // scenario/force keys bench_scenario stamps into the scale stanza).
    const JsonValue& s = doc.at("scale");
    for (const char* key : {"n", "steps", "dacc_min_exp", "async", "simd",
                            "scenario", "force"}) {
      out.scale += key;
      out.scale += '=';
      if (s.has(key)) {
        const JsonValue& v = s.at(key);
        switch (v.type) {
          case JsonValue::Type::Bool: out.scale += v.boolean ? "1" : "0"; break;
          case JsonValue::Type::String: out.scale += v.str; break;
          default: out.scale += num(v.number); break;
        }
      }
      out.scale += ';';
    }
  }
  if (doc.has("profiles")) {
    for (const JsonValue& p : doc.at("profiles").array) {
      extract_profile(p, &out);
    }
  }
  if (doc.has("metrics") && doc.at("metrics").has("kernels")) {
    for (const JsonValue& k : doc.at("metrics").at("kernels").array) {
      if (!k.has("kernel")) continue;
      const std::string name = k.at("kernel").str;
      if (k.has("seconds")) {
        out.timing["metrics.kernels[" + name + "].seconds"] =
            k.at("seconds").number;
      }
      for (const char* q : {"p50_seconds", "p95_seconds"}) {
        if (k.has(q)) {
          out.info["metrics.kernels[" + name + "]." + q] = k.at(q).number;
        }
      }
    }
  }
  for (const JsonValue& t : doc.at("tables").array) extract_table(t, &out);
  return out;
}

/// Parse every run of a key and fold them: MIN per timing leaf (additive
/// noise), first-run value per informational leaf. Leaves missing from
/// some runs keep the value of the runs that have them.
MetricSet aggregate_runs(const std::vector<std::string>& files) {
  MetricSet agg;
  bool first = true;
  for (const std::string& file : files) {
    const MetricSet one = extract(
        minijson::JsonParser(minijson::read_file(file)).parse());
    if (first) {
      agg = one;
      first = false;
      continue;
    }
    if (one.scale != agg.scale) {
      throw std::runtime_error("repeat runs disagree on scale: " + file);
    }
    for (const auto& [key, v] : one.timing) {
      auto it = agg.timing.find(key);
      if (it == agg.timing.end()) {
        agg.timing[key] = v;
      } else {
        it->second = std::min(it->second, v);
      }
    }
    for (const auto& [key, v] : one.info) agg.info.emplace(key, v);
  }
  return agg;
}

} // namespace

std::string BaselineStore::canonical_key(const std::string& filename) {
  std::string key = filename;
  const std::string ext = ".json";
  if (key.size() > ext.size() &&
      key.compare(key.size() - ext.size(), ext.size(), ext) == 0) {
    key.resize(key.size() - ext.size());
  }
  const auto dot = key.rfind(".run");
  if (dot != std::string::npos && dot + 4 < key.size()) {
    bool digits = true;
    for (std::size_t i = dot + 4; i < key.size(); ++i) {
      digits = digits && std::isdigit(static_cast<unsigned char>(key[i]));
    }
    if (digits) key.resize(dot);
  }
  return key;
}

BaselineStore::BaselineStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0) continue;
    if (name.size() < 6 || name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    entries_[canonical_key(name)].push_back(entry.path().string());
  }
  for (auto& [key, files] : entries_) std::sort(files.begin(), files.end());
}

DiffReport diff_baselines(const BaselineStore& baseline,
                          const BaselineStore& candidate,
                          const DiffOptions& opt) {
  DiffReport rep;
  for (const auto& [key, cand_files] : candidate.entries()) {
    const auto base_it = baseline.entries().find(key);
    if (base_it == baseline.entries().end()) {
      rep.notes.push_back("new report (no baseline): " + key);
      continue;
    }
    MetricSet base;
    MetricSet cand;
    try {
      base = aggregate_runs(base_it->second);
      cand = aggregate_runs(cand_files);
    } catch (const std::exception& e) {
      rep.errors.push_back(key + ": " + e.what());
      continue;
    }
    if (base.scale != cand.scale) {
      rep.notes.push_back("scale mismatch, skipped: " + key + " (baseline " +
                          base.scale + " vs candidate " + cand.scale + ")");
      continue;
    }
    rep.compared.push_back(key);
    for (const auto& [metric, cv] : cand.timing) {
      const auto bit = base.timing.find(metric);
      if (bit == base.timing.end()) {
        rep.notes.push_back("new metric (no baseline): " + key + " " +
                            metric);
        continue;
      }
      const double bv = bit->second;
      if (cv > bv * (1.0 + opt.threshold) && cv - bv > opt.abs_floor) {
        rep.regressions.push_back({key, metric, bv, cv});
      }
    }
    for (const auto& [metric, bv] : base.timing) {
      if (cand.timing.find(metric) == cand.timing.end()) {
        rep.notes.push_back("metric disappeared: " + key + " " + metric);
      }
    }
    // Deterministic counts must not drift; log2-quantized latency
    // percentiles wobble by design. Both are informational.
    for (const auto& [metric, cv] : cand.info) {
      const auto bit = base.info.find(metric);
      if (bit != base.info.end() && bit->second != cv &&
          metric.find(".ops.") != std::string::npos) {
        rep.notes.push_back("count drift: " + key + " " + metric + " " +
                            num(bit->second) + " -> " + num(cv));
      }
    }
  }
  for (const auto& [key, files] : baseline.entries()) {
    if (candidate.entries().find(key) == candidate.entries().end()) {
      rep.notes.push_back("baseline report missing from candidate: " + key);
    }
  }
  std::sort(rep.regressions.begin(), rep.regressions.end(),
            [](const DiffFinding& a, const DiffFinding& b) {
              return a.ratio() > b.ratio();
            });
  return rep;
}

void DiffReport::print(std::ostream& os, const DiffOptions& opt) const {
  os << "bench_diff: compared " << compared.size() << " report(s), gate > "
     << num(1.0 + opt.threshold) << "x and > " << num(opt.abs_floor)
     << "s slower\n";
  for (const DiffFinding& f : regressions) {
    os << "  REGRESSION " << f.report << " " << f.metric << ": "
       << num(f.baseline) << "s -> " << num(f.candidate) << "s ("
       << num(f.ratio()) << "x)\n";
  }
  for (const std::string& e : errors) os << "  ERROR " << e << "\n";
  for (const std::string& n : notes) os << "  note: " << n << "\n";
  if (ok()) os << "  no regressions\n";
}

std::string DiffReport::json(const DiffOptions& opt) const {
  std::string out = "{\n  \"bench_diff\": {\n    \"v\": 1, \"threshold\": " +
                    num(opt.threshold) +
                    ", \"abs_floor\": " + num(opt.abs_floor) + ",\n";
  auto string_array = [](const std::vector<std::string>& v) {
    std::string a = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) a += ", ";
      a += quoted(v[i]);
    }
    return a + "]";
  };
  out += "    \"compared\": " + string_array(compared) + ",\n";
  out += "    \"regressions\": [";
  for (std::size_t i = 0; i < regressions.size(); ++i) {
    const DiffFinding& f = regressions[i];
    if (i != 0) out += ",";
    out += "\n      {\"report\": " + quoted(f.report) +
           ", \"metric\": " + quoted(f.metric) +
           ", \"baseline\": " + num(f.baseline) +
           ", \"candidate\": " + num(f.candidate) +
           ", \"ratio\": " + num(f.ratio()) + "}";
  }
  out += regressions.empty() ? "],\n" : "\n    ],\n";
  out += "    \"notes\": " + string_array(notes) + ",\n";
  out += "    \"errors\": " + string_array(errors) + "\n  }\n}\n";
  return out;
}

std::size_t update_baseline(const BaselineStore& baseline,
                            const BaselineStore& candidate) {
  std::error_code ec;
  fs::create_directories(baseline.dir(), ec);
  std::size_t copied = 0;
  for (const auto& [key, files] : candidate.entries()) {
    for (const std::string& file : files) {
      const fs::path src(file);
      const fs::path dst = fs::path(baseline.dir()) / src.filename();
      std::error_code copy_ec;
      fs::copy_file(src, dst, fs::copy_options::overwrite_existing, copy_ec);
      if (copy_ec) {
        std::fprintf(stderr,
                     "gothic: error: could not archive %s into %s: %s\n",
                     file.c_str(), baseline.dir().c_str(),
                     copy_ec.message().c_str());
        continue;
      }
      ++copied;
    }
  }
  return copied;
}

} // namespace gothic::bench
