// Shared machinery of the figure/table benches: run the GOTHIC pipeline on
// the M31 workload, collect per-step nvprof-style counts, and convert them
// to predicted per-step times on each GPU descriptor.
//
// Problem sizes default to laptop scale (the paper uses N = 2^23 on a
// Tesla V100; a two-core container profiles N = 2^14 with identical
// per-step *shapes*) and are overridable:
//   GOTHIC_BENCH_N          particle count (suffix k/m allowed)
//   GOTHIC_BENCH_STEPS      measured steps per configuration
//   GOTHIC_BENCH_DACC_MIN   most accurate dacc exponent (default 16 => 2^-16)
#pragma once

#include "galaxy/m31.hpp"
#include "gravity/walk_tree.hpp"
#include "nbody/simulation.hpp"
#include "perfmodel/exec_model.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "perfmodel/tuning.hpp"
#include "util/table.hpp"

#include <vector>

namespace gothic::bench {

/// Bench-wide defaults (env-overridable).
struct BenchScale {
  std::size_t n;        ///< particles
  int steps;            ///< measured steps per configuration
  int dacc_min_exp;     ///< sweep reaches 2^-dacc_min_exp
  int threads;          ///< runtime::Device workers (GOTHIC_THREADS override)
  bool async;           ///< stream-scheduling default (GOTHIC_ASYNC)
  bool simd;            ///< AVX2 lane substrate in effect (GOTHIC_SIMD)
  static BenchScale from_env();
};

/// The per-step execution profile of one configuration, measured in
/// Volta-mode counts (Pascal-mode counts = same arithmetic with the
/// synchronisation fields cleared, as verified by the test suite).
struct StepProfile {
  std::size_t n = 0;
  double dacc = 0.0;
  simt::OpCounts walk, calc, make_raw, pred; ///< per step; make_raw = one rebuild
  gravity::WalkStats walk_stats;
  double rebuild_interval = 8.0; ///< modelled steps between rebuilds

  /// Measured host-side launch timing of the profiled steps (per-step
  /// averages): the sum of kernel body seconds vs the first-start-to-
  /// last-end wall span of the step's launch DAG. Their gap is the overlap
  /// the asynchronous stream scheduler achieved on this machine.
  double measured_kernel_seconds = 0.0;
  double measured_wall_seconds = 0.0;

  /// make amortised over the rebuild interval.
  [[nodiscard]] simt::OpCounts make_amortized() const;

  /// Kernel seconds hidden by concurrent streams per step (>= 0).
  [[nodiscard]] double measured_overlap_seconds() const {
    const double o = measured_raw_overlap_seconds();
    return o > 0.0 ? o : 0.0;
  }

  /// The same gap, signed; negative values flag scheduler anomalies that
  /// the clamped accessor hides (counted by trace::MetricsRegistry).
  [[nodiscard]] double measured_raw_overlap_seconds() const {
    return measured_kernel_seconds - measured_wall_seconds;
  }
};

/// The M31 realisation used by every bench (deterministic seed).
nbody::Particles m31_workload(std::size_t n);

/// Profile `steps` GOTHIC steps at the given accuracy on `init`
/// (copied internally). Counts are per step, measured in Volta mode.
/// A non-null `listener` (e.g. a trace::Session) observes every launch
/// and step of the internal Simulation, warm-up step included.
StepProfile profile_step(const nbody::Particles& init, double dacc,
                         int steps, int list_capacity = 128,
                         runtime::RecordListener* listener = nullptr);

/// Strip the synchronisation events: the Pascal-mode view of a profile.
simt::OpCounts pascal_view(const simt::OpCounts& volta_counts);

/// Predicted per-step kernel times on one GPU.
struct GpuStepTime {
  double walk = 0, calc = 0, make = 0, pred = 0;
  [[nodiscard]] double total() const { return walk + calc + make + pred; }
};

/// `volta_mode` selects whether the sync-bearing counts are used (only
/// meaningful on the Volta descriptor; pre-Volta GPUs always take the
/// Pascal view).
GpuStepTime predict_step_time(const StepProfile& p,
                              const perfmodel::GpuSpec& gpu,
                              bool volta_mode);

/// Measured host-side walkTree comparison of the two warp substrates:
/// the same workload walked with GOTHIC_SIMD off then on, forces and op
/// tallies cross-checked bit-for-bit (DESIGN.md "SIMD substrate"). This
/// is a *host* measurement — the perf-model predictions elsewhere in the
/// benches are substrate-independent by construction (identical counts).
struct SimdWalkSpeedup {
  bool simd_available = false;    ///< AVX2 compiled in and supported
  double scalar_seconds = 0.0;    ///< walk seconds, scalar substrate
  double simd_seconds = 0.0;      ///< walk seconds, AVX2 substrate
  bool ops_identical = false;     ///< OpCounts equal between the paths
  bool forces_identical = false;  ///< accelerations bit-equal
  [[nodiscard]] double speedup() const {
    return simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  }
};

/// Walk the workload `steps` times under each substrate (opening-angle
/// MAC, fiducial softening) and return the timed comparison.
SimdWalkSpeedup measure_simd_walk_speedup(const nbody::Particles& init,
                                          int steps);

/// The dacc sweep grid of Figs 1-2 and 4-10: 2^-1 .. 2^-dacc_min_exp.
std::vector<double> dacc_sweep(int min_exp, int stride = 1);

/// Paper-style dacc label ("2^-9").
std::string dacc_label(double dacc);

} // namespace gothic::bench
