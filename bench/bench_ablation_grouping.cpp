// Ablation — warp-group compactness (the DESIGN.md-called-out departure
// from a naive fixed 32-consecutive-body split).
//
// walk_groups() halves any run whose bounding sphere violates
// r_grp <= max(edge * fraction, 0.2 * distance-to-centroid). Sweeping the
// absolute floor shows the trade: loose groups (large fraction) fill whole
// warps but their spheres swallow the dense bulk, forcing near-direct
// summation through the leaf-spill path; overly tight groups waste warp
// lanes on traversal overhead.
#include "support/experiment.hpp"

#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <cmath>
#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  auto p = m31_workload(scale.n);
  octree::Octree tree;
  std::vector<index_t> perm;
  octree::build_tree(p.x, p.y, p.z, tree, perm, octree::BuildConfig{});
  p.apply_permutation(perm);
  octree::calc_node(tree, p.x, p.y, p.z, p.m);

  const std::size_t n = p.size();
  std::vector<real> ax(n), ay(n), az(n);
  gravity::WalkConfig boot;
  boot.eps = real(0.0156);
  boot.mac.type = gravity::MacType::OpeningAngle;
  gravity::walk_tree(tree, p.x, p.y, p.z, p.m, {}, boot, ax, ay, az);
  std::vector<real> amag(n);
  for (std::size_t i = 0; i < n; ++i) {
    amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
  }

  const auto v100 = perfmodel::tesla_v100();
  perfmodel::KernelLaunchInfo info;
  info.resources =
      perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);

  Table t("ablation: group compactness floor (M31, N = " +
              std::to_string(scale.n) + ", dacc = 2^-9)",
          {"floor (box/x)", "groups", "mean size", "interactions",
           "MAC evals", "V100 walk [s]"});
  for (const double denom : {8.0, 32.0, 128.0, 512.0}) {
    const auto groups = gravity::walk_groups(
        tree, p.x, p.y, p.z, static_cast<real>(1.0 / denom));
    gravity::WalkConfig cfg;
    cfg.eps = real(0.0156);
    cfg.mac.dacc = real(1.0 / 512);
    simt::OpCounts ops;
    gravity::WalkStats stats;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, ax, ay, az, {},
                       &ops, &stats, {}, groups);
    const double tw = perfmodel::predict_kernel_time(v100, ops, info).total_s;
    t.add_row({"1/" + Table::num(static_cast<long long>(denom)),
               Table::num(static_cast<long long>(groups.size())),
               Table::fix(static_cast<double>(n) / groups.size(), 1),
               Table::sci(static_cast<double>(stats.interactions)),
               Table::sci(static_cast<double>(stats.mac_evals)),
               Table::sci(tw)});
  }
  t.print(std::cout);
  std::cout << "expected: interactions blow up as the floor loosens "
               "(spill-dominated); MAC evaluations grow as it tightens "
               "(per-group traversal overhead); the default 1/128 sits "
               "near the time minimum.\n";
  return 0;
}
