// Scenario matrix sweep — one golden-schema report per registered
// scenario (DESIGN.md, "Scenario registry").
//
// For every registry entry (or the subset named on the command line) this
// bench realises the scenario's initial conditions, applies its force-law
// configuration on a fixed rebuild cadence, advances GOTHIC_BENCH_STEPS
// shared steps, and writes BENCH_scenario_<name>.json whose scale
// fingerprint carries the scenario name and force law — so the bench_diff
// perf gate compares like with like and refuses cross-scenario diffs.
//
//   bench_scenario [name...]     default: the whole registry
//
// Physics columns (energy drift, momentum drift) are printed for eyeball
// sanity; the enforced physics-oracle bounds live in the parameterized
// test suite (tests/test_physics_invariance.cpp), not here.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "nbody/simulation.hpp"
#include "scenario/registry.hpp"
#include "util/timer.hpp"

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace gothic;

double momentum_norm(const nbody::Momenta& m) {
  return std::sqrt(m.px * m.px + m.py * m.py + m.pz * m.pz);
}

} // namespace

int main(int argc, char** argv) {
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const int steps = std::max(8, scale.steps);

  std::vector<scenario::Scenario> selected;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      try {
        selected.push_back(scenario::scenario_from_spec(argv[i]));
      } catch (const std::exception& e) {
        std::cerr << "bench_scenario: " << e.what() << "\n";
        return 2;
      }
    }
  } else {
    selected = scenario::registry();
  }

  std::cout << "# scenario matrix: N = " << scale.n << ", steps = " << steps
            << ", " << selected.size() << " scenarios\n";

  bool ok = true;
  for (const scenario::Scenario& sc : selected) {
    nbody::SimConfig cfg = scenario_sim_config(sc);
    // Fixed cadence and shared steps: reports stay comparable run-to-run
    // regardless of host timing (same contract as bench_shard).
    cfg.block_time_steps = false;
    cfg.auto_rebuild = false;
    cfg.fixed_rebuild_interval = 4;

    const Stopwatch make_clock;
    nbody::Particles ic = sc.make(scale.n, sc.default_seed);
    const double make_seconds = make_clock.seconds();

    const Stopwatch run_clock;
    nbody::Simulation sim(std::move(ic), cfg);
    sim.refresh_forces();
    const nbody::Energies e0 = sim.energies();
    const nbody::Momenta p0 = sim.momenta();
    sim.run(steps);
    sim.refresh_forces();
    const nbody::Energies e1 = sim.energies();
    const nbody::Momenta p1 = sim.momenta();
    const double elapsed = run_clock.seconds();

    const double drift = std::fabs((e1.total() - e0.total()) /
                                   std::max(std::fabs(e0.total()), 1e-30));
    const double dp = std::sqrt(std::pow(p1.px - p0.px, 2) +
                                std::pow(p1.py - p0.py, 2) +
                                std::pow(p1.pz - p0.pz, 2));
    const double pref = std::max(momentum_norm(p0), 1e-30);

    const char* law = gravity::force_law_name(sc.law);
    BenchReport rep("scenario_" + sc.name);
    rep.set_scale(scale, sc.name, law);
    Table t("scenario " + sc.name + " [" + law + "]: " + sc.summary,
            {"n", "steps", "E0", "|dE/E|", "|dP|/max(|P0|,1)", "rebuilds",
             "walk [s]", "ic [s]", "elapsed [s]"});
    t.add_row({std::to_string(scale.n), std::to_string(steps),
               Table::sci(e0.total()), Table::sci(drift),
               Table::sci(dp / std::max(pref, 1.0)),
               std::to_string(sim.rebuild_count()),
               Table::sci(sim.timers().seconds(Kernel::WalkTree)),
               Table::sci(make_seconds), Table::sci(elapsed)});
    t.print(std::cout);
    rep.add_table(t);
    rep.add_note("fixed rebuild cadence (interval 4), shared global steps");
    rep.add_note(std::string("force law: ") + law);
    ok = rep.write(std::cout) && ok;
  }

  return ok ? 0 : 1;
}
