// Ablation — multipole order: monopole (GOTHIC) vs monopole+quadrupole.
//
// The quadrupole term costs ~25 extra FP32 instructions per interaction
// but removes the next order of the multipole error, so a coarser opening
// criterion reaches the same accuracy. This table shows the error and the
// modelled V100 cost side by side so the break-even is visible.
#include "support/experiment.hpp"

#include "gravity/direct.hpp"
#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

namespace {

using namespace gothic;
using namespace gothic::bench;

struct Workload {
  nbody::Particles p;
  octree::Octree tree;
  std::vector<double> rx, ry, rz;
};

double median_error(const Workload& w, const std::vector<real>& ax,
                    const std::vector<real>& ay,
                    const std::vector<real>& az) {
  const std::size_t n = w.p.size();
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = ax[i] - w.rx[i], dy = ay[i] - w.ry[i],
                 dz = az[i] - w.rz[i];
    const double ref = std::sqrt(w.rx[i] * w.rx[i] + w.ry[i] * w.ry[i] +
                                 w.rz[i] * w.rz[i]);
    err[i] = std::sqrt(dx * dx + dy * dy + dz * dz) / std::max(ref, 1e-12);
  }
  std::nth_element(err.begin(), err.begin() + static_cast<long>(n / 2),
                   err.end());
  return err[n / 2];
}

} // namespace

int main() {
  const std::size_t n = std::min<std::size_t>(BenchScale::from_env().n, 16384);
  Workload w;
  w.p = m31_workload(n);
  std::vector<index_t> perm;
  octree::build_tree(w.p.x, w.p.y, w.p.z, w.tree, perm,
                     octree::BuildConfig{});
  w.p.apply_permutation(perm);
  octree::CalcNodeConfig cc;
  cc.compute_quadrupole = true;
  octree::calc_node(w.tree, w.p.x, w.p.y, w.p.z, w.p.m, cc);
  w.rx.resize(n);
  w.ry.resize(n);
  w.rz.resize(n);
  gravity::direct_forces_ref(w.p.x, w.p.y, w.p.z, w.p.m, 0.0156, 1.0, w.rx,
                             w.ry, w.rz);

  const auto v100 = perfmodel::tesla_v100();
  perfmodel::KernelLaunchInfo info;
  info.resources =
      perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);

  Table t("ablation: multipole order (M31, N = " + std::to_string(n) + ")",
          {"theta", "order", "median error", "interactions",
           "V100 walk [s]"});
  for (const double theta : {1.0, 0.7, 0.5}) {
    for (const bool quad : {false, true}) {
      gravity::WalkConfig cfg;
      cfg.eps = real(0.0156);
      cfg.mac.type = gravity::MacType::OpeningAngle;
      cfg.mac.theta = static_cast<real>(theta);
      cfg.use_quadrupole = quad;
      std::vector<real> ax(n), ay(n), az(n);
      simt::OpCounts ops;
      gravity::WalkStats stats;
      gravity::walk_tree(w.tree, w.p.x, w.p.y, w.p.z, w.p.m, {}, cfg, ax, ay,
                         az, {}, &ops, &stats);
      t.add_row({Table::fix(theta, 2), quad ? "mono+quad" : "monopole",
                 Table::sci(median_error(w, ax, ay, az)),
                 Table::sci(static_cast<double>(stats.interactions)),
                 Table::sci(
                     perfmodel::predict_kernel_time(v100, ops, info).total_s)});
    }
  }
  t.print(std::cout);
  std::cout << "reading: quadrupole at theta=1.0 reaches the monopole "
               "accuracy of theta~0.7 with ~40% fewer interactions (less "
               "memory traffic, smaller lists) but ~2.5x the FP32 work per "
               "pair, so on a compute-bound V100 the orders roughly break "
               "even — consistent with GOTHIC's choice to stay "
               "monopole-only and spend the Flops on tighter dacc "
               "instead.\n";
  return 0;
}
