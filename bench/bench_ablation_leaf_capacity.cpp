// Ablation — leaf capacity of the octree build.
//
// Small leaves give tight groups and accurate pseudo-particles but a
// deeper, pointer-heavier tree (more MAC evaluations and calcNode work);
// large leaves spill more bodies into the interaction lists. The sweep
// exposes the trade-off behind the default of 16.
#include "support/experiment.hpp"

#include "gravity/walk_tree.hpp"
#include "octree/calc_node.hpp"
#include "octree/tree_build.hpp"

#include <cmath>
#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto base = m31_workload(scale.n);
  const auto v100 = perfmodel::tesla_v100();

  Table t("ablation: leaf capacity (M31, N = " + std::to_string(scale.n) +
              ", dacc = 2^-9)",
          {"leaf cap", "tree nodes", "MAC evals", "interactions",
           "V100 walk [s]", "V100 calc [s]"});
  for (const int cap : {4, 8, 16, 32, 64}) {
    auto p = base;
    octree::Octree tree;
    std::vector<index_t> perm;
    octree::BuildConfig bc;
    bc.leaf_capacity = cap;
    octree::build_tree(p.x, p.y, p.z, tree, perm, bc);
    p.apply_permutation(perm);
    simt::OpCounts calc_ops;
    octree::calc_node(tree, p.x, p.y, p.z, p.m, {}, &calc_ops);

    const std::size_t n = p.size();
    std::vector<real> ax(n), ay(n), az(n);
    gravity::WalkConfig boot;
    boot.eps = real(0.0156);
    boot.mac.type = gravity::MacType::OpeningAngle;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, {}, boot, ax, ay, az);
    std::vector<real> amag(n);
    for (std::size_t i = 0; i < n; ++i) {
      amag[i] = std::sqrt(ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i]);
    }
    gravity::WalkConfig cfg;
    cfg.eps = real(0.0156);
    cfg.mac.dacc = real(1.0 / 512);
    simt::OpCounts walk_ops;
    gravity::WalkStats stats;
    gravity::walk_tree(tree, p.x, p.y, p.z, p.m, amag, cfg, ax, ay, az, {},
                       &walk_ops, &stats);

    perfmodel::KernelLaunchInfo walk_info;
    walk_info.resources =
        perfmodel::kernel_resources(perfmodel::GothicKernel::WalkTree, 512);
    perfmodel::KernelLaunchInfo calc_info;
    calc_info.resources =
        perfmodel::kernel_resources(perfmodel::GothicKernel::CalcNode, 128);
    t.add_row(
        {Table::num(cap), Table::num(tree.num_nodes()),
         Table::sci(static_cast<double>(stats.mac_evals)),
         Table::sci(static_cast<double>(stats.interactions)),
         Table::sci(
             perfmodel::predict_kernel_time(v100, walk_ops, walk_info).total_s),
         Table::sci(
             perfmodel::predict_kernel_time(v100, calc_ops, calc_info).total_s)});
  }
  t.print(std::cout);
  std::cout << "expected: node count (and calcNode cost) falls with leaf "
               "capacity while spill interactions grow; the minimum of the "
               "walk+calc sum motivates the default of 16.\n";
  return 0;
}
