// Figure 10 — sustained single-precision performance of the whole code
// (all kernels, total elapsed time per step) vs dacc, for two problem
// sizes. Paper: 3.1 TFlop/s (20% of peak) at N = 2^23 and 3.5 TFlop/s
// (22%) at N = 25*2^20, both at dacc = 2^-9; the dacc dependence is
// stronger than walkTree's because calcNode dilutes the Flop rate at
// large dacc.
#include "support/experiment.hpp"
#include "support/report.hpp"

#include "util/env.hpp"

#include <iostream>

int main() {
  using namespace gothic;
  using namespace gothic::bench;

  const BenchScale scale = BenchScale::from_env();
  const auto v100 = perfmodel::tesla_v100();
  const double peak = v100.fp32_peak_tflops();

  const std::size_t n_small = scale.n;
  const std::size_t n_large = env_size("GOTHIC_BENCH_N2", scale.n * 4);

  Table t("Fig 10 - sustained whole-code performance (V100 compute_60)",
          {"dacc", ("TFlop/s N=" + std::to_string(n_small)),
           ("TFlop/s N=" + std::to_string(n_large)), "% peak (large N)"});
  BenchReport rep("fig10_total_flops");
  rep.set_scale(scale);
  const auto smaller = m31_workload(n_small);
  const auto larger = m31_workload(n_large);
  for (const double dacc : dacc_sweep(scale.dacc_min_exp, 2)) {
    double tf[2] = {0, 0};
    int k = 0;
    for (const auto* init : {&smaller, &larger}) {
      const StepProfile p = profile_step(*init, dacc, scale.steps);
      rep.add_profile(dacc_label(dacc) + " N=" + std::to_string(p.n), p);
      const GpuStepTime gt = predict_step_time(p, v100, false);
      simt::OpCounts all = p.walk + p.calc + p.pred + p.make_amortized();
      tf[k++] = perfmodel::sustained_tflops(all, gt.total());
    }
    t.add_row({dacc_label(dacc), Table::fix(tf[0], 2), Table::fix(tf[1], 2),
               Table::fix(100.0 * tf[1] / peak, 1)});
  }
  t.print(std::cout);
  std::cout << "paper: larger N sustains the higher fraction of peak "
               "(22% vs 20% at dacc = 2^-9); the whole-code rate sits well "
               "below the walkTree-only rate of Fig 9.\n";
  rep.add_table(t);
  rep.add_note("paper: larger N sustains the higher fraction of peak");
  rep.write(std::cout);
  return 0;
}
